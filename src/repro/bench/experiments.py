"""One experiment per table and figure of the paper.

Every function returns an :class:`ExperimentResult` whose rows mirror the
rows/series the paper reports.  The registry at the bottom maps
experiment ids (``table3``, ``fig5``...) to functions so the CLI and the
pytest-benchmark wrappers share one implementation.

Experiment map (paper -> function):

* Table 2  -> :func:`exp_table2_cost_model`  (I/O cost formulas vs measured)
* Table 3  -> :func:`exp_table3_profiling`
* Figure 3 -> :func:`exp_fig3_search`        (lookup/scan throughput HDD+SSD)
* Table 4 / Figure 4 -> :func:`exp_table4_blocks`
* Table 5  -> :func:`exp_table5_hybrid`
* Figure 5 -> :func:`exp_fig5_write`         (write workloads HDD+SSD)
* Figure 6 -> :func:`exp_fig6_breakdown`     (insert step latencies)
* Figure 7 -> :func:`exp_fig7_bulkload`
* Figure 8 -> :func:`exp_fig8_hybrid_search` (inner nodes memory-resident)
* Figure 9 -> :func:`exp_fig9_hybrid_write`
* Figure 10 -> :func:`exp_fig10_storage`
* Figure 11 -> :func:`exp_fig11_blocksize`
* Figure 12 -> :func:`exp_fig12_tail`
* Figure 13 -> :func:`exp_fig13_buffer`
* Figure 14 -> :func:`exp_fig14_overall`
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import os

from ..core.serial import entries_per_block
from ..datasets import REPORTED_DATASETS as _DEFAULT_DATASETS
from ..datasets import dataset_names, make_dataset, profile_dataset
from ..workloads import run_workload
from .config import PROFILES, Scale, default_scale, fresh_index

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "experiment_ids"]

#: The five studied indexes, in the paper's plotting order.
INDEXES = ("btree", "fiting", "pgm", "alex", "lipp")


def _reported_datasets():
    """The datasets the figures loop over.

    The paper's figures report FB/OSM/YCSB and defer the remaining
    datasets to its technical report; set ``REPRO_DATASETS=all`` (or a
    comma list) to regenerate the TR-style full sweep.
    """
    override = os.environ.get("REPRO_DATASETS")
    if not override:
        return _DEFAULT_DATASETS
    if override.strip().lower() == "all":
        return tuple(dataset_names())
    return tuple(name.strip() for name in override.split(",") if name.strip())


REPORTED_DATASETS = _DEFAULT_DATASETS  # back-compat alias
WRITE_WORKLOADS = ("write_only", "read_heavy", "write_heavy", "balanced")


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment_id: str
    title: str
    rows: List[dict] = field(default_factory=list)
    notes: str = ""

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names


# ---------------------------------------------------------------------------
# Table 2 — I/O cost analysis
# ---------------------------------------------------------------------------

def exp_table2_cost_model(scale: Optional[Scale] = None) -> ExperimentResult:
    """Evaluate the paper's Table 2 worst-case formulas and compare with
    the measured average lookup block counts at the current scale."""
    scale = scale or default_scale()
    n = scale.n_read
    block = scale.block_size
    b = entries_per_block(block)  # raw-layout entries per block
    epsilon = 64
    m = 4096                 # ALEX max data node entries (default parameter)

    result = ExperimentResult("table2", "Table 2: I/O cost analysis (lookup)")
    for dataset in _reported_datasets():
        keys = make_dataset(dataset, n, seed=scale.seed)
        segments = len(__import__("repro.models", fromlist=["optimal_segments"])
                       .optimal_segments([int(k) for k in keys], epsilon))
        formulas = {
            "btree": math.log(n, b),
            "fiting": math.log(max(segments, 2), b) + 2 * epsilon / b,
            "pgm": math.log(n / b, 2),
            "alex": math.log(n, 2) / 4 + math.log(m / b, 2) + 1,  # log N with large fanout
            "lipp": 2 * math.log(n, 2) / 8,  # 2 log N with LIPP's huge fanout
        }
        measured = {}
        for name in INDEXES:
            setup = fresh_index(name, dataset, "lookup_only", scale)
            res = run_workload(setup.index, setup.ops[: max(scale.n_lookup_ops // 4, 100)])
            measured[name] = res.blocks_read_per_op
        for name in INDEXES:
            result.rows.append({
                "dataset": dataset, "index": name,
                "formula_blocks": round(formulas[name], 2),
                "measured_blocks": round(measured[name], 2),
            })
    result.notes = (
        "The formulas are worst-case bounds with implementation-specific "
        "constants; the comparison checks magnitude and ordering, not equality.")
    return result


# ---------------------------------------------------------------------------
# Table 3 — dataset profiling
# ---------------------------------------------------------------------------

def exp_table3_profiling(scale: Optional[Scale] = None,
                         datasets: Optional[Sequence[str]] = None) -> ExperimentResult:
    scale = scale or default_scale()
    from ..datasets import dataset_names
    datasets = datasets or dataset_names(include_large=True)
    result = ExperimentResult("table3", "Table 3: dataset profiling")
    for name in datasets:
        n = scale.n_read * (4 if name.endswith("800m") else 1)
        keys = make_dataset(name, n, seed=scale.seed)
        profile = profile_dataset(name, keys)
        row = {"dataset": name, "keys": n}
        for bound, count in sorted(profile.segments_by_error.items()):
            row[f"seg@{bound}"] = count
        row["btree_leaves"] = profile.btree_leaves
        row["conflict_degree"] = profile.conflict_degree
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 3 — search performance, entire index disk-resident
# ---------------------------------------------------------------------------

def exp_fig3_search(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig3", "Figure 3: lookup/scan throughput, all-disk (ops/sim-second)")
    for device_name, profile in PROFILES.items():
        for workload in ("lookup_only", "scan_only"):
            for dataset in _reported_datasets():
                row = {"device": device_name, "workload": workload, "dataset": dataset}
                for name in INDEXES:
                    setup = fresh_index(name, dataset, workload, scale, profile=profile)
                    res = run_workload(setup.index, setup.ops, workload=workload,
                                       scan_length=scale.scan_length)
                    row[name] = round(res.throughput_ops_per_s, 1)
                result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Table 4 / Figure 4 — fetched block analysis
# ---------------------------------------------------------------------------

def exp_table4_blocks(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "table4", "Table 4 / Figure 4: avg fetched blocks per query (inner/leaf)")
    for workload in ("lookup_only", "scan_only"):
        for dataset in _reported_datasets():
            for name in INDEXES:
                setup = fresh_index(name, dataset, workload, scale)
                res = run_workload(setup.index, setup.ops, workload=workload,
                                   scan_length=scale.scan_length)
                result.rows.append({
                    "workload": workload, "dataset": dataset, "index": name,
                    "inner_blocks": round(res.inner_blocks_per_op, 2),
                    "leaf_blocks": round(res.leaf_blocks_per_op, 2),
                    "total_blocks": round(res.blocks_read_per_op, 2),
                })
    result.notes = "LIPP has one node type: its blocks are all reported as leaf."
    return result


# ---------------------------------------------------------------------------
# Table 5 — hybrid design
# ---------------------------------------------------------------------------

def exp_table5_hybrid(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "table5", "Table 5: hybrid (learned inner + B+-tree leaves) fetched blocks")
    hybrids = ["hybrid-fiting", "hybrid-pgm", "hybrid-alex", "hybrid-lipp", "btree"]
    for dataset in _reported_datasets():
        for name in hybrids:
            row = {"dataset": dataset, "index": name}
            for workload in ("lookup_only", "scan_only"):
                setup = fresh_index(name, dataset, workload, scale)
                res = run_workload(setup.index, setup.ops, workload=workload,
                                   scan_length=scale.scan_length)
                key = "lookup_blocks" if workload == "lookup_only" else "scan_blocks"
                row[key] = round(res.blocks_read_per_op, 2)
            result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 5 — write performance, entire index disk-resident
# ---------------------------------------------------------------------------

def exp_fig5_write(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig5", "Figure 5: write-workload throughput, all-disk (ops/sim-second)")
    for device_name, profile in PROFILES.items():
        for workload in WRITE_WORKLOADS:
            for dataset in _reported_datasets():
                row = {"device": device_name, "workload": workload, "dataset": dataset}
                for name in INDEXES:
                    setup = fresh_index(name, dataset, workload, scale, profile=profile)
                    res = run_workload(setup.index, setup.ops, workload=workload)
                    row[name] = round(res.throughput_ops_per_s, 1)
                result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 6 — write performance breakdown
# ---------------------------------------------------------------------------

def exp_fig6_breakdown(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig6", "Figure 6: per-insert step latency (us): search/insert/SMO/maintenance")
    for dataset in _reported_datasets():
        for name in INDEXES:
            setup = fresh_index(name, dataset, "write_only", scale)
            res = run_workload(setup.index, setup.ops, workload="write_only")
            result.rows.append({
                "dataset": dataset, "index": name,
                "search_us": round(res.phase_latency_us("search"), 1),
                "insert_us": round(res.phase_latency_us("insert"), 1),
                "smo_us": round(res.phase_latency_us("smo"), 1),
                "maintenance_us": round(res.phase_latency_us("maintenance"), 1),
            })
    return result


# ---------------------------------------------------------------------------
# Figure 7 — bulkload time and index size
# ---------------------------------------------------------------------------

def exp_fig7_bulkload(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult("fig7", "Figure 7: bulkload time and index size")
    for dataset in _reported_datasets():
        for name in INDEXES:
            setup = fresh_index(name, dataset, "lookup_only", scale)
            result.rows.append({
                "dataset": dataset, "index": name,
                "bulkload_sim_s": round(setup.bulkload_us / 1e6, 2),
                "size_mib": round(setup.device.allocated_bytes / 2**20, 2),
                "height": setup.index.height(),
            })
    return result


# ---------------------------------------------------------------------------
# Figures 8 & 9 — inner nodes memory-resident
# ---------------------------------------------------------------------------

def _hybrid_case(result: ExperimentResult, workloads: Sequence[str],
                 scale: Scale) -> None:
    # LIPP is excluded: a single node type and a multi-GB root (Section 6.2).
    names = [n for n in INDEXES if n != "lipp"]
    for device_name, profile in PROFILES.items():
        for workload in workloads:
            for dataset in _reported_datasets():
                row = {"device": device_name, "workload": workload, "dataset": dataset}
                for name in names:
                    setup = fresh_index(name, dataset, workload, scale, profile=profile,
                                        inner_memory_resident=True)
                    res = run_workload(setup.index, setup.ops, workload=workload,
                                       scan_length=scale.scan_length)
                    row[name] = round(res.throughput_ops_per_s, 1)
                result.rows.append(row)


def exp_fig8_hybrid_search(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig8", "Figure 8: search throughput, inner nodes memory-resident")
    _hybrid_case(result, ("lookup_only", "scan_only"), scale)
    return result


def exp_fig9_hybrid_write(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig9", "Figure 9: write throughput, inner nodes memory-resident")
    _hybrid_case(result, WRITE_WORKLOADS, scale)
    return result


# ---------------------------------------------------------------------------
# Figure 10 — storage usage
# ---------------------------------------------------------------------------

def exp_fig10_storage(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig10", "Figure 10: on-disk storage after the Write-Only workload")
    for dataset in _reported_datasets():
        for name in INDEXES:
            setup = fresh_index(name, dataset, "write_only", scale)
            run_workload(setup.index, setup.ops, workload="write_only")
            result.rows.append({
                "dataset": dataset, "index": name,
                "allocated_mib": round(setup.device.allocated_bytes / 2**20, 2),
                "live_mib": round(setup.device.live_bytes / 2**20, 2),
            })
    result.notes = ("allocated includes freed-but-unreclaimed extents; the paper "
                    "notes on-disk space of learned indexes cannot be reclaimed easily.")
    return result


# ---------------------------------------------------------------------------
# Figure 11 — impact of block size
# ---------------------------------------------------------------------------

def exp_fig11_blocksize(scale: Optional[Scale] = None,
                        block_sizes: Sequence[int] = (4096, 8192, 16384)
                        ) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig11", "Figure 11: avg fetched blocks per lookup vs block size")
    for dataset in _reported_datasets():
        for name in INDEXES:
            row = {"dataset": dataset, "index": name}
            for block_size in block_sizes:
                setup = fresh_index(name, dataset, "lookup_only", scale,
                                    block_size=block_size)
                res = run_workload(setup.index, setup.ops)
                row[f"{block_size // 1024}k"] = round(res.blocks_read_per_op, 2)
            result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 12 — tail latency
# ---------------------------------------------------------------------------

def exp_fig12_tail(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig12", "Figure 12: p99 latency and std dev, lookup & write (HDD, us)")
    for workload in ("lookup_only", "write_only"):
        for dataset in _reported_datasets():
            for name in INDEXES:
                setup = fresh_index(name, dataset, workload, scale)
                res = run_workload(setup.index, setup.ops, workload=workload)
                result.rows.append({
                    "workload": workload, "dataset": dataset, "index": name,
                    "mean_us": round(res.mean_latency_us, 1),
                    "p99_us": round(res.p99_latency_us, 1),
                    "std_us": round(res.std_latency_us, 1),
                })
    return result


# ---------------------------------------------------------------------------
# Figure 13 — buffer size study
# ---------------------------------------------------------------------------

def exp_fig13_buffer(scale: Optional[Scale] = None,
                     buffer_sizes: Sequence[int] = (0, 2, 8, 32, 128, 512)
                     ) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig13", "Figure 13: avg fetched blocks per lookup vs LRU buffer size")
    for dataset in _reported_datasets():
        for name in INDEXES:
            row = {"dataset": dataset, "index": name}
            for buffer_blocks in buffer_sizes:
                setup = fresh_index(name, dataset, "lookup_only", scale,
                                    buffer_blocks=buffer_blocks)
                res = run_workload(setup.index, setup.ops)
                row[f"buf{buffer_blocks}"] = round(res.blocks_read_per_op, 2)
            result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# Figure 14 — normalized comparison of all workloads
# ---------------------------------------------------------------------------

def exp_fig14_overall(scale: Optional[Scale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    result = ExperimentResult(
        "fig14", "Figure 14: all six workloads on YCSB and FB, normalized throughput")
    for dataset in ("ycsb", "fb"):
        for workload in ("lookup_only", "scan_only", "write_only",
                         "read_heavy", "write_heavy", "balanced"):
            throughputs = {}
            for name in INDEXES:
                setup = fresh_index(name, dataset, workload, scale)
                res = run_workload(setup.index, setup.ops, workload=workload,
                                   scan_length=scale.scan_length)
                throughputs[name] = res.throughput_ops_per_s
            best = max(throughputs.values())
            row = {"dataset": dataset, "workload": workload}
            for name in INDEXES:
                row[name] = round(throughputs[name] / best, 3)
            result.rows.append(row)
    result.notes = "1.0 marks the fastest index per (dataset, workload)."
    return result


# ---------------------------------------------------------------------------
# Durability — group commit sweep and recovery time (beyond the paper)
# ---------------------------------------------------------------------------

def exp_durability(scale: Optional[Scale] = None,
                   batch_sizes: Sequence[int] = (1, 8, 64)) -> ExperimentResult:
    """Write-Only with a write-ahead log attached: sweep the group-commit
    batch size on both device profiles, then crash-free-recover from a
    post-bulkload checkpoint by replaying the whole log.

    Reported per cell: insert throughput with logging on, log blocks
    written per operation (the group-commit amortization), flush count,
    and the simulated recovery time of a full-log replay.
    """
    from ..durability import recover, take_checkpoint

    scale = scale or default_scale()
    result = ExperimentResult(
        "durability",
        "Durability: WAL group commit sweep + recovery time (Write-Only, YCSB)")
    for profile_name in ("hdd", "ssd"):
        for name in ("btree", "alex"):
            for batch in batch_sizes:
                setup = fresh_index(name, "ycsb", "write_only", scale,
                                    profile=PROFILES[profile_name],
                                    wal_group_commit=batch)
                checkpoint = take_checkpoint(setup.index, setup.wal)
                res = run_workload(setup.index, setup.ops, workload="write_only")
                recovered = recover(checkpoint, setup.wal,
                                    profile=PROFILES[profile_name])
                res.recovery_us = recovered.recovery_us
                n = max(res.num_ops, 1)
                result.rows.append({
                    "device": profile_name, "index": name, "batch": batch,
                    "ops_per_s": round(res.throughput_ops_per_s, 1),
                    "log_blocks_per_op": round(res.log_blocks_written / n, 3),
                    "flushes": res.log_flushes,
                    "recovery_ms": round(res.recovery_us / 1e3, 1),
                    "replayed": recovered.records_applied,
                })
    result.notes = (
        "Log appends are charged as real block I/O under the 'log' phase; "
        "larger group-commit batches amortize one block write over more "
        "operations. Recovery = checkpoint reopen + CRC-checked WAL replay.")
    return result


# ---------------------------------------------------------------------------
# Batched execution — coalesced multi-block lookups (beyond the paper)
# ---------------------------------------------------------------------------

def exp_batch_lookup(scale: Optional[Scale] = None,
                     batch_sizes: Sequence[int] = (1, 8, 64, 256)
                     ) -> ExperimentResult:
    """Lookup-Only with consecutive lookups grouped into ``lookup_many``
    batches: the batched execution engine sorts each group, shares one
    inner descent, and fetches the distinct leaf blocks as coalesced
    contiguous runs (DESIGN.md Section 10).

    Reported per cell: throughput, fetched blocks per op, accesses
    charged the random-positioning cost per op (the Table 2 ``t_s`` term),
    and how many multi-block runs the device coalesced.  Every run uses
    ``validate=True`` so a wrong batched result fails loudly — batching
    must be a pure I/O-schedule optimization.
    """
    scale = scale or default_scale()
    result = ExperimentResult(
        "batch_lookup",
        "Batched lookups: blocks & positionings per op vs batch size")
    for profile_name in ("hdd", "ssd"):
        for name in ("btree", "fiting", "alex"):
            for batch in batch_sizes:
                setup = fresh_index(name, "ycsb", "lookup_only", scale,
                                    profile=PROFILES[profile_name])
                res = run_workload(setup.index, setup.ops,
                                   workload="lookup_only", batch=batch,
                                   validate=True)
                result.rows.append({
                    "device": profile_name, "index": name, "batch": batch,
                    "ops_per_s": round(res.throughput_ops_per_s, 1),
                    "blocks_per_op": round(res.blocks_read_per_op, 3),
                    "positionings_per_op": round(res.positionings_per_op, 3),
                    "coalesced_runs": res.coalesced_runs,
                })
    result.notes = (
        "Results are validated against the expected payloads at every "
        "batch size; larger batches may only change the I/O schedule, "
        "never the answers.")
    return result


# ---------------------------------------------------------------------------
# Wall-clock vectorization — real CPU throughput, charged I/O unchanged
# ---------------------------------------------------------------------------

def exp_wallclock(scale: Optional[Scale] = None,
                  batch_sizes: Sequence[int] = (64,),
                  min_ops: int = 3_000) -> ExperimentResult:
    """Real wall-clock ``lookup_many`` throughput, scalar vs vectorized.

    Everything else in the harness reports *simulated* time (the charged
    I/O cost model).  This experiment is the one place that times the
    Python execution itself: for each index it builds two identical
    fresh devices, replays the same read-heavy lookup batches through
    the scalar path (``scalar_lookups()``) and the vectorized path, and
    reports real ``time.perf_counter`` ops/sec for both (DESIGN.md
    Section 15).

    The vectorized path must be a pure CPU optimization: after both
    runs, the two devices' charged ``StorageStats`` (reads, writes,
    positionings, simulated elapsed time) are asserted **bit-identical**
    — a divergence fails the experiment, not just a row.  All results
    are validated against the expected payloads.
    """
    import time as _time

    from ..core import scalar_lookups

    scale = scale or default_scale()
    result = ExperimentResult(
        "wallclock",
        "Wall-clock lookup_many throughput: scalar vs vectorized")
    # (index, leaf codec): the compressed cells check that the codec
    # decode paths keep their vectorized fast path (DESIGN.md Section 16).
    cells = (("btree", "raw"), ("fiting", "raw"), ("pgm", "raw"),
             ("alex", "raw"), ("hybrid-pgm", "raw"),
             ("pgm", "for"), ("hybrid-pgm", "for"))
    for name, codec in cells:
        for batch in batch_sizes:
            cell = {"index": name, "codec": codec, "batch": batch}
            charged = {}
            setups = {}
            groups = None
            passes = 1
            params = {} if codec == "raw" else {"codec": codec}
            for mode in ("scalar", "vectorized"):
                setup = fresh_index(name, "ycsb", "lookup_only", scale,
                                    profile=PROFILES["hdd"],
                                    index_params=params)
                lookup_keys = [key for _kind, key in setup.ops]
                groups = [lookup_keys[i : i + batch]
                          for i in range(0, len(lookup_keys), batch)]
                # Deterministic pass count from the scale alone, so both
                # modes replay the exact same operation sequence.
                passes = max(1, -(-min_ops // max(len(lookup_keys), 1)))
                setups[mode] = setup
            # Interleave repeated timed passes of the two modes and keep
            # each mode's best time: machine-wide noise (scheduler, turbo,
            # co-tenants) hits both modes alike within a repeat, and the
            # minimum is the standard low-variance wall-clock estimator.
            # Both setups replay identical op sequences the same number of
            # times, so the charged-stats comparison below is unaffected.
            best = {"scalar": float("inf"), "vectorized": float("inf")}
            for _repeat in range(3):
                for mode in ("scalar", "vectorized"):
                    index = setups[mode].index
                    outputs = []
                    if mode == "scalar":
                        with scalar_lookups():
                            started = _time.perf_counter()
                            for _ in range(passes):
                                for group in groups:
                                    outputs.append(index.lookup_many(group))
                            elapsed = _time.perf_counter() - started
                    else:
                        started = _time.perf_counter()
                        for _ in range(passes):
                            for group in groups:
                                outputs.append(index.lookup_many(group))
                        elapsed = _time.perf_counter() - started
                    best[mode] = min(best[mode], elapsed)
                    for group, found in zip(groups * passes, outputs):
                        for key, payload in zip(group, found):
                            if payload != key + 1:
                                raise AssertionError(
                                    f"{name} {mode} lookup({key}) returned "
                                    f"{payload}, expected {key + 1}")
            total_ops = passes * sum(len(g) for g in groups)
            for mode in ("scalar", "vectorized"):
                cell[f"{mode}_ops_per_s"] = round(total_ops / best[mode], 1)
                stats = setups[mode].device.stats
                charged[mode] = (stats.reads, stats.writes,
                                 stats.read_positionings,
                                 stats.write_positionings,
                                 stats.elapsed_us)
            if charged["scalar"] != charged["vectorized"]:
                raise AssertionError(
                    f"{name} batch={batch}: vectorized execution changed "
                    f"the charged I/O cost model — scalar "
                    f"{charged['scalar']} vs vectorized "
                    f"{charged['vectorized']}")
            cell["speedup"] = round(
                cell["vectorized_ops_per_s"] / cell["scalar_ops_per_s"], 2)
            cell["charges_identical"] = True
            result.rows.append(cell)
    result.notes = (
        "ops_per_s columns are real wall-clock (time.perf_counter), not "
        "the simulated cost model; charges_identical records the asserted "
        "bit-equality of (reads, writes, read/write positionings, "
        "simulated elapsed_us) between the scalar and vectorized runs.")
    return result


# ---------------------------------------------------------------------------
# Compressed leaf pages — codec sweep + extended Table 2 cost model
# ---------------------------------------------------------------------------

#: Nominal CPU cost of materializing one decoded entry, the
#: transfer-cost-per-decoded-entry term that extends the Table 2 model:
#: a compressed page trades fewer charged blocks for decoding the whole
#: page column on every touch.  The constant approximates a vectorized
#: delta+unpack decode on the paper's hardware; it only matters on the
#: SSD profile, where a block access costs tens (not thousands) of us.
DECODE_US_PER_ENTRY = 0.01


def exp_compression(scale: Optional[Scale] = None,
                    codecs: Sequence[str] = ("raw", "delta", "for"),
                    indexes: Sequence[str] = ("btree", "pgm", "hybrid-pgm"),
                    buffer_blocks: Optional[int] = None) -> ExperimentResult:
    """Leaf-page codec sweep: codec x index x device (DESIGN.md Sec. 16).

    For each cell the same uniform lookup workload runs against a fresh
    index built with the codec, reporting storage density (entries per
    leaf block) and charged lookup I/O, plus ratios against the raw
    layout of the same (device, index).

    Every cell gets the *same* ``buffer_blocks``-frame pool — the DBMS
    setting of the paper.  That is where compression's headline win
    comes from: a 2-4x denser leaf file means the same pool covers 2-4x
    more of the index, so uniform lookups miss far less often ("fewer
    charged reads everywhere"), on top of the structurally smaller
    windows (a compressed PGM reads exactly one data page where the raw
    layout's +-epsilon window straddles ~1.5).

    When ``buffer_blocks`` is not given, the pool is sized to ~1/3 of
    the *raw* leaf file (260 frames at the default 200k-key scale, never
    below 32).  Sizing it relative to the data keeps the sweep in the
    same cache regime at any ``REPRO_BENCH_SCALE``: a fixed frame count
    would swallow the whole compressed index at small scales and report
    a degenerate 0.0 blocks ratio instead of the graded win.

    The ``model_us`` column extends the paper's Table 2 cost model with a
    transfer-cost-per-decoded-entry term (:data:`DECODE_US_PER_ENTRY`):
    charged positioning + sequential + per-KiB transfer costs from the
    device profile, plus the decode cost of every leaf page the lookup
    touched.  On the HDD profile the positioning term dominates and
    compression's fewer blocks win outright; on the SSD profile the
    decode term visibly narrows (but does not close) the gap — the
    design-choice tradeoff this experiment exists to show.
    """
    scale = scale or default_scale()
    if buffer_blocks is None:
        # ~1/3 of the raw leaf file (256 16-byte entries per 4 KiB
        # block), floored so toy scales still get a working pool.
        buffer_blocks = max(32, scale.n_read // 768)
    result = ExperimentResult(
        "compression",
        "Compressed leaf pages: density + charged lookup I/O, codec sweep")
    for device_name, profile in PROFILES.items():
        raw_cells: Dict[str, dict] = {}
        for name in indexes:
            for codec in codecs:
                params = {} if codec == "raw" else {"codec": codec}
                setup = fresh_index(name, "ycsb", "lookup_only", scale,
                                    profile=profile, index_params=params,
                                    buffer_blocks=buffer_blocks)
                res = run_workload(setup.index, setup.ops,
                                   workload="lookup_only", validate=True)
                entries, leaf_blocks = _density(setup)
                per_leaf = entries / max(leaf_blocks, 1)
                bs = setup.device.block_size
                decoded = (0.0 if codec == "raw"
                           else res.leaf_blocks_per_op * per_leaf)
                seq_blocks = res.blocks_read_per_op - (
                    res.read_positionings / max(res.num_ops, 1))
                model_us = (
                    res.read_positionings / max(res.num_ops, 1)
                    * profile.read_positioning_us
                    + seq_blocks * profile.read_sequential_us
                    + res.blocks_read_per_op
                    * profile.transfer_us_per_kib * (bs / 1024.0)
                    + decoded * DECODE_US_PER_ENTRY)
                row = {
                    "device": device_name, "index": name, "codec": codec,
                    "entries_per_leaf": round(per_leaf, 1),
                    "leaf_blocks": leaf_blocks,
                    "blocks_per_lookup": round(res.blocks_read_per_op, 3),
                    "positionings_per_lookup": round(
                        res.positionings_per_op, 3),
                    "sim_us_per_lookup": round(
                        res.sim_elapsed_us / max(res.num_ops, 1), 1),
                    "decoded_entries_per_lookup": round(decoded, 1),
                    "model_us_per_lookup": round(model_us, 1),
                }
                if codec == "raw":
                    raw_cells[name] = row
                base = raw_cells[name]
                row["entries_ratio"] = round(
                    row["entries_per_leaf"] / base["entries_per_leaf"], 2)
                # At toy scales the pool can absorb the whole raw index
                # (zero charged reads); report 1.0 rather than divide by
                # zero — the ratio is only meaningful when reads happen.
                row["blocks_ratio"] = (
                    round(row["blocks_per_lookup"]
                          / base["blocks_per_lookup"], 2)
                    if base["blocks_per_lookup"] else 1.0)
                result.rows.append(row)
    result.notes = (
        "entries_ratio / blocks_ratio compare each codec to the raw "
        "layout of the same (device, index); model_us_per_lookup is the "
        "Table 2 cost model extended with a transfer-cost-per-decoded-"
        f"entry term ({DECODE_US_PER_ENTRY} us/entry). All lookups are "
        "validated against the expected payloads.")
    return result


def _density(setup) -> tuple:
    """(total entries, leaf/data blocks) of a bulk-loaded index cell."""
    index = setup.index
    entries = len(setup.bulk_items)
    if hasattr(index, "num_leaves"):          # hybrid
        return entries, index.num_leaves
    if hasattr(index, "num_leaf_blocks"):     # btree
        return entries, index.num_leaf_blocks
    if hasattr(index, "components"):          # pgm: sum LSM component data
        blocks = sum(c.data_file.num_blocks for c in index.components
                     if c is not None)
        return entries, blocks
    raise ValueError(f"no leaf-density accessor for {index.name}")


# ---------------------------------------------------------------------------
# Write-back buffer pool — coalesced dirty-page flushing (beyond the paper)
# ---------------------------------------------------------------------------

def exp_write_back(scale: Optional[Scale] = None,
                   buffer_blocks: int = 512) -> ExperimentResult:
    """Write-Heavy and Balanced with the pool in write-through vs
    write-back mode: write-back absorbs block writes as dirty frames and
    flushes them sorted at the run's end, so adjacent SMO rewrites merge
    into contiguous runs charged one positioning each (DESIGN.md
    Section 11).

    Both modes use the *same* pool size, so the only difference is when
    (and how coalesced) the writes reach the device.  Reported per cell:
    throughput, write positionings, total writes, explicit flushes and
    dirty evictions.  Every run uses ``validate=True`` — buffered writes
    must never change an answer.
    """
    scale = scale or default_scale()
    result = ExperimentResult(
        "write_back",
        "Write-back pool: write positionings, write-through vs write-back")
    for profile_name in ("hdd", "ssd"):
        for workload in ("write_heavy", "balanced"):
            for name in ("btree", "alex", "lipp"):
                for mode in ("through", "back"):
                    setup = fresh_index(
                        name, "ycsb", workload, scale,
                        profile=PROFILES[profile_name],
                        buffer_blocks=buffer_blocks,
                        write_back=(mode == "back"))
                    res = run_workload(setup.index, setup.ops,
                                       workload=workload, validate=True)
                    result.rows.append({
                        "device": profile_name, "workload": workload,
                        "index": name, "mode": mode,
                        "ops_per_s": round(res.throughput_ops_per_s, 1),
                        "write_positionings": res.write_positionings,
                        "writes": int(res.blocks_written_per_op
                                      * max(res.num_ops, 1) + 0.5),
                        "flushes": res.flushes,
                        "dirty_evictions": res.dirty_evictions,
                    })
    result.notes = (
        "Same pool capacity in both modes; write-back defers writes to "
        "sorted coalesced flush runs (one positioning per contiguous run) "
        "while write-through pays one positioning per non-sequential "
        "block write. Results validated against expected payloads.")
    return result


# ---------------------------------------------------------------------------
# Self-healing storage — fault sweep (beyond the paper)
# ---------------------------------------------------------------------------

def exp_fault_sweep(scale: Optional[Scale] = None,
                    transient_rates: Sequence[float] = (0.0, 1e-4, 1e-3, 1e-2),
                    bit_rot_rate: float = 5e-4) -> ExperimentResult:
    """Read-Heavy on a degrading device: seeded transient read errors
    absorbed by the pager's retry/backoff, plus low-rate bit rot caught
    by the checksum envelope and repaired from checkpoint + WAL redo by
    a :class:`repro.durability.SelfHealer` (DESIGN.md Section 12).

    The fault model is armed only *after* the bulk load and checkpoint —
    faults hit the serving path, and the checkpoint is the known-good
    repair base.  Reported per cell: throughput (repair I/O included —
    it is charged to the same device), retries, detected corruptions,
    and repaired blocks.  The zero-rate row is the clean baseline: its
    counters must all be zero and its throughput matches a run without
    the fault machinery.
    """
    from ..durability import SelfHealer, take_checkpoint
    from ..storage import DeviceFaultModel

    scale = scale or default_scale()
    result = ExperimentResult(
        "fault_sweep",
        "Self-healing: throughput & repair rate vs injected fault rate (Read-Heavy, YCSB)")
    for profile_name in ("hdd", "ssd"):
        for name in ("btree", "alex"):
            for rate in transient_rates:
                setup = fresh_index(name, "ycsb", "read_heavy", scale,
                                    profile=PROFILES[profile_name],
                                    wal_group_commit=scale.group_commit)
                checkpoint = take_checkpoint(setup.index, setup.wal)
                setup.device.fault_model = DeviceFaultModel(
                    seed=scale.seed,
                    transient_error_rate=rate,
                    bit_rot_rate=bit_rot_rate if rate else 0.0)
                healer = SelfHealer(setup.index, checkpoint, setup.wal)
                res = run_workload(setup.index, setup.ops,
                                   workload="read_heavy", healer=healer)
                result.rows.append({
                    "device": profile_name, "index": name,
                    "transient_rate": rate,
                    "ops_per_s": round(res.throughput_ops_per_s, 1),
                    "io_retries": res.io_retries,
                    "checksum_failures": res.checksum_failures,
                    "repaired_blocks": res.repaired_blocks,
                    "healed_faults": res.healed_faults,
                })
    result.notes = (
        "Transient errors are retried with exponential backoff charged as "
        "simulated latency; checksum failures are repaired in place from "
        "the checkpoint + WAL redo (zero lost acknowledged writes) and the "
        "operation re-executed. The WAL file is excluded from injection — "
        "a single-copy log is the recovery source, not a repair target.")
    return result


# ---------------------------------------------------------------------------
# Concurrent serving — multi-client scaling (beyond the paper)
# ---------------------------------------------------------------------------

def exp_concurrency(scale: Optional[Scale] = None,
                    client_counts: Sequence[int] = (1, 4, 16, 64, 256),
                    buffer_blocks: int = 256,
                    zipf_s: float = 0.9,
                    shards: int = 1) -> ExperimentResult:
    """Balanced workload interleaved over 1→256 client sessions with
    zipfian (hot-key) lookups, on HDD and SSD, for the B+-tree, ALEX and
    the hybrid design (DESIGN.md Section 13).

    One shared index and WAL serve every session through the
    :mod:`repro.serving` engine, so three effects scale with the client
    count: cross-client group commit amortizes log flushes over all
    sessions' pending writes (``flushes_per_write`` falls), hot-key
    skew turns overlapping frame accesses into latch stalls
    (``latch_ms`` grows), and snapshot reads stay latch-free at every
    client count (``read_latch_us`` is identically zero).

    ``shards`` > 1 serves every cell from a range-partitioned
    :class:`repro.sharding.ShardedIndex` instead of one flat index
    (same aggregate pool: ``buffer_blocks`` splits across the shards);
    at the default 1 the flat path is untouched, and the benchmark
    wrapper separately asserts that routing through a 1-shard tier adds
    zero extra charged positionings.
    """
    scale = scale or default_scale()
    result = ExperimentResult(
        "concurrency",
        "Concurrent serving: group-commit amortization and latch stalls, "
        "1-256 clients")
    from ..serving import split_ops
    for profile_name in ("hdd", "ssd"):
        for name in ("btree", "alex", "hybrid-alex"):
            # The hybrid design is evaluated read-only in the paper
            # (Table 5): its cells sweep the snapshot-read path only.
            workload = "lookup_only" if name.startswith("hybrid") else "balanced"
            for clients in client_counts:
                if shards > 1:
                    from .config import fresh_sharded_index

                    setup = fresh_sharded_index(
                        name, shards, "ycsb", workload, scale,
                        profile=PROFILES[profile_name],
                        buffer_blocks=max(1, buffer_blocks // shards),
                        durability=True,
                        wal_group_commit=scale.group_commit,
                        lookup_distribution="zipfian", zipf_s=zipf_s)
                else:
                    setup = fresh_index(
                        name, "ycsb", workload, scale,
                        profile=PROFILES[profile_name],
                        buffer_blocks=buffer_blocks, with_wal=True,
                        lookup_distribution="zipfian", zipf_s=zipf_s)
                # client_ops forces the serving path even at one client,
                # so every cell reports the same commit/latch counters.
                res = run_workload(setup.index, setup.ops,
                                   workload=workload,
                                   client_ops=split_ops(setup.ops, clients),
                                   validate=True)
                client_p99s = [c["latency"]["p99"]
                               for c in res.per_client.values() if c["ops"]]
                ops_per_s = res.throughput_ops_per_s
                result.rows.append({
                    "device": profile_name, "index": name,
                    "workload": workload, "clients": clients,
                    "shards": shards,
                    # A fully-cached tiny-scale cell has zero simulated
                    # elapsed time; report 0 rather than infinity so the
                    # rows stay valid JSON.
                    "ops_per_s": round(ops_per_s, 1)
                        if math.isfinite(ops_per_s) else 0.0,
                    "p50_us": round(res.p50_latency_us, 1),
                    "p99_us": round(res.p99_latency_us, 1),
                    "worst_client_p99_us": round(max(client_p99s), 1)
                        if client_p99s else 0.0,
                    "flushes_per_write": round(
                        res.flushes_per_committed_write, 4),
                    "mean_commit_group": round(res.mean_commit_group, 2),
                    "latch_waits": res.latch_waits,
                    "latch_ms": round(res.latch_wait_us / 1e3, 2),
                    "read_latch_us": round(res.read_latch_wait_us, 1),
                    "commit_wait_ms": round(res.commit_wait_us / 1e3, 2),
                    "snapshot_reads": res.snapshot_reads,
                })
    result.notes = (
        "One op stream dealt round-robin over N sessions sharing one "
        "index + WAL. Latencies are client-perceived (latch stalls and "
        "group-commit waits included). flushes_per_write falls as the "
        "commit group fills from all clients; read_latch_us is zero at "
        "every cell because snapshot reads never take latches.")
    return result


# ---------------------------------------------------------------------------
# Extension — sharded, replicated storage tier (DESIGN.md Section 14)
# ---------------------------------------------------------------------------

def _tuner_ops(partition, loaded, withheld, num_ops: int, seed: int):
    """A mixed stream whose per-shard op mixes diverge by construction:
    shard 0 sees reads and scans only, shard 1 is lookup-heavy with a
    trickle of inserts, shard 2 is insert-heavy.  Returns the stream in
    a deterministic interleave."""
    import random as _random

    rng = _random.Random(seed)
    by_shard_loaded = {s: [] for s in range(3)}
    for key, _ in loaded:
        by_shard_loaded[partition.shard_of(key)].append(key)
    by_shard_fresh = {s: [] for s in range(3)}
    for key in withheld:
        by_shard_fresh[partition.shard_of(key)].append(key)
    ops = []
    per_shard = num_ops // 3
    for _ in range(per_shard):
        # Shard 0: pure read (lookup-dominant with some scans).
        key = rng.choice(by_shard_loaded[0])
        ops.append(("scan", key) if rng.random() < 0.1 else ("lookup", key))
        # Shard 1: read-heavy with ~5% inserts.
        if rng.random() < 0.05 and by_shard_fresh[1]:
            ops.append(("insert", by_shard_fresh[1].pop()))
        else:
            ops.append(("lookup", rng.choice(by_shard_loaded[1])))
        # Shard 2: write-heavy (~80% inserts).
        if rng.random() < 0.8 and by_shard_fresh[2]:
            ops.append(("insert", by_shard_fresh[2].pop()))
        else:
            ops.append(("lookup", rng.choice(by_shard_loaded[2])))
    return ops


def exp_sharding(scale: Optional[Scale] = None,
                 shard_counts: Sequence[int] = (1, 2, 4, 8, 16),
                 buffer_blocks: Optional[int] = None,
                 replica_counts: Sequence[int] = (1, 3)) -> ExperimentResult:
    """Sharded-tier sweep (DESIGN.md Section 14), three sections of rows.

    ``scaleout``: uniform B+-tree tier, 1 -> 16 shards x {HDD, SSD} x
    {uniform, zipfian} lookups.  Every shard owns its own device and a
    ``buffer_blocks``-frame pool, so the aggregate cache grows with the
    shard count and charged read positionings per op fall — the
    scale-out effect a partitioned disk-resident tier buys.

    ``replicas``: 4-shard tier, sweeping ``replica_counts`` copies under
    round-robin read fan-out (no pools, so every copy charges identical
    per-op work): read fan-out must not hurt tail latency.  The
    benchmark wrapper's ``--replicas`` flag widens this sweep.

    ``tuner``: a 3-shard tier under a skewed mixed stream (one shard
    read-only, one read-heavy, one write-heavy).  The workload-aware
    tuner scores each shard's observed mix against the paper's P1-P5
    rules and picks *divergent* classes; fresh tiers then run the same
    stream under the tuned per-shard composition and under each uniform
    writable choice — total charged positionings decide the winner.
    """
    scale = scale or default_scale()
    if buffer_blocks is None:
        # A quarter of the tier's leaf blocks (16B entries): one shard
        # can never cache its slice, four shards together can — the
        # shape this sweep measures, at every REPRO_BENCH_SCALE.
        buffer_blocks = max(8, scale.n_read * 16 // scale.block_size // 4)
    result = ExperimentResult(
        "sharding",
        "Sharded tier: scale-out, replica fan-out, workload-aware tuning")

    # -- section 1: scale-out sweep -----------------------------------------
    for profile_name in ("hdd", "ssd"):
        for distribution in ("uniform", "zipfian"):
            baseline = None
            for shards in shard_counts:
                from .config import fresh_sharded_index

                setup = fresh_sharded_index(
                    "btree", shards, "ycsb", "lookup_only", scale,
                    profile=PROFILES[profile_name],
                    buffer_blocks=buffer_blocks,
                    lookup_distribution=distribution)
                # Warm the pools first: the sweep compares steady-state
                # hit rates, not the compulsory cold misses (which only
                # depend on the op count, not the shard count).
                run_workload(setup.index, setup.ops, workload="warmup")
                res = run_workload(setup.index, setup.ops,
                                   workload="lookup_only", validate=True,
                                   shards=shards)
                pos_per_op = res.read_positionings / res.num_ops
                if shards == shard_counts[0]:
                    baseline = pos_per_op
                result.rows.append({
                    "section": "scaleout", "device": profile_name,
                    "distribution": distribution, "shards": shards,
                    "read_pos_per_op": round(pos_per_op, 4),
                    # None = the aggregate pool fully caches the tier
                    # (zero charged positionings; infinity is not JSON).
                    "reduction_x": round(baseline / pos_per_op, 2)
                        if pos_per_op else None,
                    "p50_us": round(res.p50_latency_us, 1),
                    "p99_us": round(res.p99_latency_us, 1),
                    "ops_per_s": round(res.throughput_ops_per_s, 1)
                        if math.isfinite(res.throughput_ops_per_s) else 0.0,
                })

    # -- section 2: replica read fan-out ------------------------------------
    from .config import fresh_sharded_index

    for replicas in replica_counts:
        setup = fresh_sharded_index(
            "btree", 4, "ycsb", "lookup_only", scale, profile=PROFILES["hdd"],
            replicas=replicas)
        res = run_workload(setup.index, setup.ops, workload="lookup_only",
                           validate=True, shards=4, replicas=replicas)
        served = [shard["reads_served"] for shard in res.per_shard.values()]
        result.rows.append({
            "section": "replicas", "device": "hdd", "shards": 4,
            "replicas": replicas,
            "p50_us": round(res.p50_latency_us, 1),
            "p99_us": round(res.p99_latency_us, 1),
            "reads_served": sum(sum(counts) for counts in served),
            "read_pos_per_op": round(
                res.read_positionings / res.num_ops, 4),
        })

    # -- section 3: workload-aware divergent tuning --------------------------
    from ..core import make_sharded_index
    from ..sharding import ShardTuner

    # The P1-P5 cost table is calibrated at ~60k keys *per shard* (a
    # 3-level B+-tree; at 20k a shard's B+-tree flattens to 2 levels and
    # ties the hybrid on lookups), so this section sizes the tier at
    # 60k x 3 regardless of the sweep scale.
    n = max(180_000, 6 * scale.n_write_bulk)
    keys = make_dataset("ycsb", 2 * n, seed=scale.seed)
    loaded = [(int(key), int(key) + 1) for key in keys[0::2]]
    withheld = [int(key) for key in keys[1::2]]
    sample = [key for key, _ in loaded]
    num_ops = max(1_500, 3 * (scale.n_lookup_ops // 2))

    # Profile the mix on a uniform scout tier, then let the tuner choose.
    scout = make_sharded_index("btree", 3, sample_keys=sample,
                               profile=PROFILES["hdd"])
    scout.bulk_load(loaded)
    ops = _tuner_ops(scout.partition, loaded, list(withheld), num_ops,
                     seed=scale.seed)
    run_workload(scout, ops, workload="mixed")
    tuner = ShardTuner()
    plan = {shard.shard_id: tuner.choose(shard.op_mix())
            for shard in scout.shards}

    configs = [("divergent", [plan[s] for s in range(3)]),
               ("uniform-btree", "btree"), ("uniform-alex", "alex")]
    for label, names in configs:
        tier = make_sharded_index(names, 3, sample_keys=sample,
                                  profile=PROFILES["hdd"])
        tier.bulk_load(loaded)
        res = run_workload(tier, _tuner_ops(tier.partition, loaded,
                                            list(withheld), num_ops,
                                            seed=scale.seed),
                           workload="mixed", validate=True, shards=3)
        result.rows.append({
            "section": "tuner", "device": "hdd", "config": label,
            "composition": ",".join(tier.composition()),
            "total_positionings": res.read_positionings
                + res.write_positionings,
            "read_pos": res.read_positionings,
            "write_pos": res.write_positionings,
            "p99_us": round(res.p99_latency_us, 1),
        })

    result.notes = (
        "scaleout: per-shard pools aggregate with the shard count, so "
        "charged read positionings per lookup fall as the tier scales "
        "out. replicas: round-robin read fan-out over identical copies "
        "leaves the tail unchanged. tuner: the P1-P5 scorer assigns "
        "divergent per-shard classes under skewed mixes "
        f"(plan: {plan}) and the divergent tier charges less total "
        "positioning than any uniform writable choice.")
    return result


# ---------------------------------------------------------------------------
# Extension — fault-tolerant serving under member faults (DESIGN.md §17)
# ---------------------------------------------------------------------------

def _chaos_counters(res) -> dict:
    """The charged counters the zero-rate identity check compares.

    Every field here moves if the fault-tolerance machinery charges a
    single extra block or microsecond on the clean path — bit-equality
    against a run without that machinery is the no-overhead proof.
    """
    return {
        "sim_elapsed_us": res.sim_elapsed_us,
        "p50_latency_us": res.p50_latency_us,
        "p99_latency_us": res.p99_latency_us,
        "blocks_read_per_op": res.blocks_read_per_op,
        "blocks_written_per_op": res.blocks_written_per_op,
        "read_positionings": res.read_positionings,
        "write_positionings": res.write_positionings,
        "io_retries": res.io_retries,
        "checksum_failures": res.checksum_failures,
        "log_records": res.log_records,
        "log_flushes": res.log_flushes,
        "committed_writes": res.committed_writes,
        "num_ops": res.num_ops,
    }


def _audit_acked_writes(index) -> dict:
    """Zero-lost-acknowledged-writes audit over a durable sharded tier.

    An acknowledged write is one whose WAL record the group commit made
    durable before the client unblocked, so acked ⊆ durable; with
    member faults confined to replicas (the log device is excluded by
    the fault model, and a faulted primary fails over through log
    catch-up) every durable record is also applied.  The audit therefore
    checks the *stronger* claim: every durable insert record is readable
    with its exact payload on the shard's current primary.  Lookups here
    run after measurement, so their charges do not pollute the rows.
    """
    durable_inserts = 0
    lost = 0
    for shard in index.shards:
        if shard.wal is None:
            continue
        for record in shard.wal.durable_records():
            if record.op != "insert":
                continue
            durable_inserts += 1
            if shard.lookup(record.key) != record.payload:
                lost += 1
    return {"durable_inserts": durable_inserts, "lost": lost}


def exp_chaos(scale: Optional[Scale] = None,
              fault_rates: Sequence[float] = (0.0, 1e-3, 1e-2),
              replica_counts: Sequence[int] = (2, 3),
              clients: int = 4,
              crash_after: int = 150) -> ExperimentResult:
    """Fault-tolerant serving under per-member faults (DESIGN.md §17).

    ``sweep``: a 2-shard durable B+-tree tier, ``replicas`` copies per
    shard, Balanced workload over ``clients`` sessions, on HDD and SSD.
    One replica member per shard runs on degrading media — a per-member
    fork of one seeded fault model injects transient errors, bit rot
    and stalls at the swept rate (the WAL is excluded; the primary is
    clean).  Hedged reads, per-op deadlines, a retry budget and the
    write admission gate are all armed.  Every row asserts zero lost
    acknowledged writes and full op accounting (served + shed = dealt);
    the zero-rate row additionally asserts *bit-identical* charged
    counters against a control tier built without any of the fault
    machinery — robustness costs nothing until a fault fires.  After
    measurement, quarantined members rejoin via catch-up resync (or
    re-seed when damaged) and the row records which.

    ``resync``: a *replica* crashes after ``crash_after`` charged
    reads, surfaced through the read rotation — the discovering read
    hedges to a healthy peer (charged, still answered) and the member
    is quarantined out of rotation with its data intact.  The mixed
    stream then serves degraded; afterwards the crash is cleared and
    the member rejoins by replaying the WAL suffix it missed (charged,
    byte-verified catch-up resync), asserted to beat the full re-seed
    path.

    ``failover``: same tier shape, but the whole-member fault is on the
    *primary* — it crashes after ``crash_after`` charged reads, the
    freshest replica is promoted live, and the row asserts the promotion
    happened with zero lost acknowledged writes.
    """
    from ..storage import DeviceFaultModel
    from .config import fresh_sharded_index

    scale = scale or default_scale()
    result = ExperimentResult(
        "chaos",
        "Fault tolerance: replica health, hedged reads, live failover "
        "under injected member faults")

    def build(profile_name, replicas, chaos):
        profile = PROFILES[profile_name]
        extra = {}
        if chaos:
            # Hedge budget: two exponential-backoff retries on the slow
            # member, then re-issue to a healthy peer.
            extra = dict(hedge_us=3 * profile.read_positioning_us,
                         quarantine_after=2)
        return fresh_sharded_index(
            "btree", 2, "ycsb", "balanced", scale, profile=profile,
            replicas=replicas, durability=True,
            wal_group_commit=scale.group_commit, **extra)

    # Deadlines sized to each device's tail: p50 clears them, a stalled
    # or faulted op does not — so misses measure degradation, not noise.
    deadlines = {"hdd": 150_000.0, "ssd": 2_000.0}

    def serve(setup, profile_name, chaos):
        extra = {}
        if chaos:
            extra = dict(deadline_us=deadlines[profile_name],
                         retry_budget=3, max_inflight_writes=64)
        return run_workload(setup.index, setup.ops, workload="balanced",
                            clients=clients, validate=True, **extra)

    # -- section 1: fault-rate sweep on one replica member -------------------
    for profile_name in ("hdd", "ssd"):
        for replicas in replica_counts:
            p99_clean = None
            for rate in fault_rates:
                setup = build(profile_name, replicas, chaos=True)
                parent = DeviceFaultModel(
                    seed=scale.seed,
                    transient_error_rate=rate,
                    bit_rot_rate=rate / 2,
                    stall_rate=rate / 2,
                    stall_us=(5 * PROFILES[profile_name].read_positioning_us
                              if rate else 0.0))
                for shard in setup.index.shards:
                    victim = shard.replicas[0]
                    victim.device.fault_model = parent.fork(
                        shard.shard_id + 1)
                res = serve(setup, profile_name, chaos=True)
                if rate == 0.0:
                    # The no-overhead proof: with every fault rate zero,
                    # the armed tier charges bit-identically to a tier
                    # built without the fault machinery at all.
                    control = serve(build(profile_name, replicas,
                                          chaos=False),
                                    profile_name, chaos=False)
                    mine, theirs = _chaos_counters(res), _chaos_counters(control)
                    if mine != theirs:
                        raise AssertionError(
                            f"zero-rate chaos run diverged from control: "
                            f"{mine} != {theirs}")
                    p99_clean = res.p99_latency_us
                audit = _audit_acked_writes(setup.index)
                if audit["lost"]:
                    raise AssertionError(
                        f"{audit['lost']} acknowledged writes lost at "
                        f"rate={rate} ({profile_name}, {replicas} replicas)")
                unaccounted = len(setup.ops) - res.num_ops - res.shed_ops
                if unaccounted:
                    raise AssertionError(
                        f"{unaccounted} ops neither completed nor shed at "
                        f"rate={rate} ({profile_name}, {replicas} replicas)")
                quarantined = sum(
                    states.count("quarantined")
                    for states in setup.index.health_summary().values())
                rejoined = setup.index.rejoin_quarantined()
                result.rows.append({
                    "section": "sweep", "device": profile_name,
                    "replicas": replicas, "fault_rate": rate,
                    "ops_per_s": round(res.throughput_ops_per_s, 1)
                        if math.isfinite(res.throughput_ops_per_s) else 0.0,
                    "p50_us": round(res.p50_latency_us, 1),
                    "p99_us": round(res.p99_latency_us, 1),
                    "p99_vs_clean": round(
                        res.p99_latency_us / p99_clean, 3)
                        if p99_clean else None,
                    "io_retries": res.io_retries,
                    "hedged_reads": res.hedged_reads,
                    "failovers": res.failovers,
                    "shed_ops": res.shed_ops,
                    "op_retries": res.op_retries,
                    "deadline_misses": res.deadline_misses,
                    "quarantined": quarantined,
                    "resyncs": rejoined["resync"],
                    "reseeds": rejoined["reseed"],
                    "resync_blocks": setup.index.resync_blocks,
                    "acked_writes": res.committed_writes,
                    "durable_inserts": audit["durable_inserts"],
                    "lost_acked": audit["lost"],
                })

    # -- section 2: replica crash, hedged reads, catch-up resync -------------
    for profile_name in ("hdd", "ssd"):
        setup = build(profile_name, 2, chaos=True)
        parent = DeviceFaultModel(seed=scale.seed, crash_after=crash_after)
        forks, victims = [], []
        for shard in setup.index.shards:
            fork = parent.fork(200 + shard.shard_id)
            shard.replicas[0].device.fault_model = fork
            forks.append(fork)
            victims.append(shard.replicas[0])
        # Surface the crash through the *read rotation*: lookups
        # alternate onto the doomed member until its countdown expires
        # mid-read.  Discovery-by-read matters — the fault is absorbed
        # as a hedged re-issue (charged, the caller still gets its
        # answer) and the member leaves the rotation untainted, which
        # is what qualifies it for the cheap log-suffix resync below.
        # Left to the mixed stream, the crash can instead surface on a
        # write being shipped mid-apply; that taints the copy and
        # forces the full re-seed — a different (also correct) path,
        # but not the one this section measures.
        lookup_keys = [op[1] for op in setup.ops if op[0] == "lookup"]
        for i in range(100 * crash_after):
            if all(v.health.state == "quarantined" for v in victims):
                break
            setup.index.lookup(lookup_keys[i % len(lookup_keys)])
        else:
            raise AssertionError(
                f"replica crash never surfaced on the read rotation "
                f"({profile_name})")
        if setup.index.hedged_reads < 1:
            raise AssertionError(
                f"replica crash produced no hedged reads ({profile_name})")
        # The measured segment then serves the full mixed stream with
        # the member quarantined, accumulating the WAL suffix it missed.
        res = serve(setup, profile_name, chaos=True)
        audit = _audit_acked_writes(setup.index)
        if audit["lost"]:
            raise AssertionError(
                f"{audit['lost']} acknowledged writes lost with a crashed "
                f"replica ({profile_name})")
        # The crash quarantined the replica through the read path (its
        # writes were clean), so after the operator swaps the enclosure
        # it rejoins by replaying the missed WAL suffix — not a re-seed.
        for fork in forks:
            fork.clear_crash()
        resync_blocks_before = setup.index.resync_blocks
        rejoined = setup.index.rejoin_quarantined()
        if rejoined["resync"] < 1:
            raise AssertionError(
                f"crashed replica did not rejoin via catch-up resync "
                f"({profile_name}): {rejoined}")
        result.rows.append({
            "section": "resync", "device": profile_name, "replicas": 2,
            "crash_after_reads": crash_after,
            "hedged_reads": setup.index.hedged_reads,
            "failovers": res.failovers,
            "p99_us": round(res.p99_latency_us, 1),
            "resyncs": rejoined["resync"],
            "reseeds": rejoined["reseed"],
            "resync_blocks": setup.index.resync_blocks
                - resync_blocks_before,
            "acked_writes": res.committed_writes,
            "lost_acked": audit["lost"],
        })

    # -- section 3: primary crash and live failover ---------------------------
    for profile_name in ("hdd", "ssd"):
        setup = build(profile_name, 3, chaos=True)
        parent = DeviceFaultModel(seed=scale.seed, crash_after=crash_after)
        for shard in setup.index.shards:
            shard.primary.device.fault_model = parent.fork(
                100 + shard.shard_id)
        res = serve(setup, profile_name, chaos=True)
        if res.failovers < 1:
            raise AssertionError(
                f"primary crash_after={crash_after} triggered no failover "
                f"({profile_name})")
        audit = _audit_acked_writes(setup.index)
        if audit["lost"]:
            raise AssertionError(
                f"{audit['lost']} acknowledged writes lost across failover "
                f"({profile_name})")
        result.rows.append({
            "section": "failover", "device": profile_name, "replicas": 3,
            "crash_after_reads": crash_after,
            "failovers": res.failovers,
            "hedged_reads": res.hedged_reads,
            "shed_ops": res.shed_ops,
            "p99_us": round(res.p99_latency_us, 1),
            "acked_writes": res.committed_writes,
            "durable_inserts": audit["durable_inserts"],
            "lost_acked": audit["lost"],
        })

    result.notes = (
        "sweep: faults (transient + bit rot + stalls, seeded per-member "
        "forks) hit one replica per shard; soft strikes suspend it, "
        "repeats quarantine it out of the read rotation, and hedged "
        "reads re-issue slow/faulted reads to healthy peers, bounding "
        "p99. The zero-rate row is asserted bit-identical to a tier "
        "without the fault machinery. failover: the primary crashes "
        "mid-run; the freshest replica is promoted with the WAL redone "
        "on its device, and no acknowledged write is lost. Quarantined "
        "members rejoin by replaying the missed log suffix (resync), "
        "falling back to a full re-seed when byte verification fails.")
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": exp_table2_cost_model,
    "table3": exp_table3_profiling,
    "fig3": exp_fig3_search,
    "table4": exp_table4_blocks,
    "table5": exp_table5_hybrid,
    "fig5": exp_fig5_write,
    "fig6": exp_fig6_breakdown,
    "fig7": exp_fig7_bulkload,
    "fig8": exp_fig8_hybrid_search,
    "fig9": exp_fig9_hybrid_write,
    "fig10": exp_fig10_storage,
    "fig11": exp_fig11_blocksize,
    "fig12": exp_fig12_tail,
    "fig13": exp_fig13_buffer,
    "fig14": exp_fig14_overall,
    "durability": exp_durability,
    "batch_lookup": exp_batch_lookup,
    "wallclock": exp_wallclock,
    "compression": exp_compression,
    "write_back": exp_write_back,
    "fault_sweep": exp_fault_sweep,
    "concurrency": exp_concurrency,
    "sharding": exp_sharding,
    "chaos": exp_chaos,
}


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, scale: Optional[Scale] = None,
                   trace_path: Optional[str] = None,
                   **kwargs) -> ExperimentResult:
    """Run one experiment; with ``trace_path`` set, attach a
    :class:`repro.obs.Tracer` to every index the experiment builds and
    export the combined op-level trace as JSONL to that path.  Extra
    keyword arguments pass through to the experiment function (e.g. the
    ``concurrency`` experiment's ``shards``)."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: {experiment_ids()}"
        ) from None
    if trace_path is None:
        return fn(scale, **kwargs)
    from ..obs import Tracer
    from .config import tracing

    tracer = Tracer()
    with tracing(tracer):
        result = fn(scale, **kwargs)
    tracer.export_jsonl(trace_path)
    tracer.unbind()
    return result
