"""Generate EXPERIMENTS.md from archived benchmark results.

``python -m repro.bench report`` stitches the paper's expected outcome
for every table/figure together with the measured rows archived by the
benchmark suite under ``benchmarks/results/``, producing the
paper-vs-measured record the repository ships as EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional

__all__ = ["render_experiments_md", "PAPER_EXPECTATIONS"]

#: Per experiment: (paper artifact, what the paper reports, the shape that
#: must reproduce, known scale caveats).
PAPER_EXPECTATIONS: Dict[str, Dict[str, str]] = {
    "table2": {
        "artifact": "Table 2",
        "paper": "Worst-case I/O cost formulas per index (lookup/scan/insert).",
        "shape": "Measured lookup block counts stay within the formulas' "
                 "magnitude and preserve their ordering.",
    },
    "table3": {
        "artifact": "Table 3",
        "paper": "Dataset profiling: PLA segments at eps 16/64/256/1024, "
                 "B+-tree leaf count, FMCD conflict degree. FB hardest for "
                 "PLA; OSM the largest conflict degree; YCSB/Stack easiest.",
        "shape": "Same orderings on the synthetic datasets: FB max segments, "
                 "OSM max conflict degree (>2x genome), YCSB/Stack minimal "
                 "on both metrics.",
    },
    "fig3": {
        "artifact": "Figure 3",
        "paper": "Lookup/scan throughput, all-disk, HDD+SSD. Learned indexes "
                 "competitive on lookups (LIPP best); B+-tree wins scans.",
        "shape": "LIPP >= B+-tree on YCSB lookups; B+-tree tops scans; every "
                 "SSD number strictly above its HDD twin.",
    },
    "table4": {
        "artifact": "Table 4 / Figure 4",
        "paper": "Fetched blocks split into inner/leaf. B+-tree: 3 inner + 1 "
                 "leaf. FITing/PGM leaf ~1.2; ALEX >= 2 leaf blocks (model "
                 "and slot in different blocks); LIPP ~20-30 blocks per scan.",
        "shape": "B+-tree exactly 1 leaf block per lookup; ALEX >= 2 leaf "
                 "blocks; LIPP the scan maximum by a wide margin.",
    },
    "table5": {
        "artifact": "Table 5",
        "paper": "Hybrid design (learned inner + B+-tree leaves): similar or "
                 "better than B+-tree on FB/YCSB; fixes ALEX/LIPP scans.",
        "shape": "Hybrid ALEX/LIPP scan within ~2 blocks of their lookups "
                 "(vs 10-60 blocks for the originals).",
    },
    "fig5": {
        "artifact": "Figure 5",
        "paper": "Write workloads: PGM wins Write-Only everywhere; B+-tree "
                 "beats the other learned indexes; ALEX/LIPP collapse.",
        "shape": "PGM wins Write-Only on HDD and beats every learned index "
                 "on SSD. Scale caveat: our 3-level B+-tree (paper: 4) ties "
                 "PGM on the SSD profile.",
    },
    "fig6": {
        "artifact": "Figure 6",
        "paper": "Insert step breakdown: LIPP dominated by maintenance "
                 "(path statistics) and SMO; ALEX by insertion+bitmap; PGM "
                 "cheapest search.",
        "shape": "LIPP's maintenance latency the largest of all indexes; "
                 "PGM search <= B+-tree search.",
    },
    "fig7": {
        "artifact": "Figure 7",
        "paper": "Bulkload: learned indexes build slower and bigger; PGM "
                 "smallest, LIPP largest (gapped 5x slot allocation).",
        "shape": "Size: PGM < B+-tree < FITing < ALEX << LIPP; LIPP builds "
                 "slowest.",
    },
    "fig8": {
        "artifact": "Figure 8",
        "paper": "Inner nodes memory-resident: FITing/PGM competitive with "
                 "B+-tree on search; ALEX is not (its leaves still cost 2+ "
                 "blocks). LIPP excluded (single node type, multi-GB root).",
        "shape": "ALEX below the best of B+-tree/FITing/PGM on lookups.",
    },
    "fig9": {
        "artifact": "Figure 9",
        "paper": "Inner nodes memory-resident, write workloads: B+-tree "
                 "outperforms everything (O15).",
        "shape": "B+-tree wins the balanced workload on every dataset/device.",
    },
    "fig10": {
        "artifact": "Figure 10",
        "paper": "Storage after Write-Only: PGM and B+-tree smallest "
                 "(reclaimable space), LIPP up to 20x larger.",
        "shape": "Smallest two = {PGM, B+-tree}; LIPP the largest.",
    },
    "fig11": {
        "artifact": "Figure 11",
        "paper": "Block size 4->16 KiB reduces fetched blocks for B+-tree/"
                 "FITing/PGM/ALEX; LIPP flat (exact predictions).",
        "shape": "Monotone non-increasing for all but LIPP; LIPP within 1 "
                 "block across sizes.",
    },
    "fig12": {
        "artifact": "Figure 12",
        "paper": "Tail latency: B+-tree smallest, most stable p99; ALEX/LIPP "
                 "large deviations (unbalanced structure, SMO spikes).",
        "shape": "B+-tree minimal p99 on FB and minimal std everywhere; "
                 "ALEX/LIPP std > 5x B+-tree on hard datasets. Scale caveat: "
                 "PGM's shallow level stack lets it tie p99 on OSM.",
    },
    "fig13": {
        "artifact": "Figure 13",
        "paper": "LRU buffer sweep: LIPP fewest blocks at buffer 0; beyond "
                 "~8 blocks the small-upper-level indexes overtake it.",
        "shape": "LIPP min at buffer 0 (YCSB); LIPP not the minimum at 512 "
                 "blocks; buffers never increase fetched blocks.",
    },
    "fig14": {
        "artifact": "Figure 14",
        "paper": "Normalized throughput, all six workloads on YCSB+FB: "
                 "except Lookup-Only, B+-tree competitive or best.",
        "shape": "B+-tree >= 0.6 normalized on scan/read-heavy/balanced; "
                 "PGM = 1.0 on Write-Only.",
    },
    "ablation-alex-layout": {
        "artifact": "Section 4.1 (prose)",
        "paper": "ALEX Layout#2 0.5%-30% faster than Layout#1 on lookups.",
        "shape": "Layout#2 never fetches more blocks; speedups up to ~30% "
                 "on the hard datasets, ~0% on YCSB.",
    },
    "ablation-fiting-segmentation": {
        "artifact": "Section 4.2 (prose)",
        "paper": "The port replaces greedy segmentation with PGM's optimal "
                 "streaming algorithm.",
        "shape": "Streaming produces <= greedy's segment count and storage.",
    },
    "ablation-error-bound": {
        "artifact": "Section 5.3 (prose)",
        "paper": "Error bound 64 chosen: best across the majority of cases.",
        "shape": "eps=1024 never beats eps=64 on lookup blocks.",
    },
    "scalability": {
        "artifact": "Section 5.1 (800M dataset)",
        "paper": "The 4x OSM dataset for scalability.",
        "shape": "Lookup blocks grow at most logarithmically over 4x keys.",
    },
    "zipfian-buffer": {
        "artifact": "Extension (P5)",
        "paper": "—",
        "shape": "Zipfian access turns a small LRU buffer into a ~90% "
                 "fetch reduction for every index.",
    },
    "plid": {
        "artifact": "Section 7.2 (P1-P5, future work)",
        "paper": "Proposes four design principles + buffer co-design for "
                 "future on-disk learned indexes; builds none.",
        "shape": "PLID (the principles instantiated) beats every *learned* "
                 "index on scans and mixed workloads and matches or beats "
                 "the B+-tree on lookups — the sweet spot the paper "
                 "conjectures exists.",
    },
    "buffer-policy": {
        "artifact": "Extension (Section 6.6)",
        "paper": "The paper fixes LRU.",
        "shape": "CLOCK tracks LRU closely; FIFO slightly worse.",
    },
    "durability": {
        "artifact": "Extension (durability subsystem)",
        "paper": "The paper evaluates clean runs only; disk-resident "
                 "deployments need logging/recovery (cf. Abu-Libdeh et "
                 "al.'s Google-scale disk-based learned index).",
        "shape": "Log blocks per op fall as 1/batch (1.0 -> 0.125 -> "
                 "0.016 for batches 1/8/64) and throughput rises "
                 "monotonically; WAL-replay recovery pays real simulated "
                 "I/O and is faster on SSD than HDD.",
    },
    "batch_lookup": {
        "artifact": "Extension (batched execution engine)",
        "paper": "The paper executes one query at a time; its Table 2 "
                 "cost model separates positioning (t_s) from sequential "
                 "transfer (t_t), which batching exploits.",
        "shape": "Blocks/op and positionings/op fall monotonically as the "
                 "batch grows (shared descents + coalesced leaf runs); "
                 "results are byte-identical at every batch size.",
    },
    "write_back": {
        "artifact": "Extension (write-back buffer pool)",
        "paper": "The paper writes through on every block write; its "
                 "Table 2 t_s/t_t split applies equally to writes, and "
                 "the authors' follow-up on-disk designs buffer writes "
                 "and flush them in bulk.",
        "shape": "Write-back charges >= 2x fewer write positionings than "
                 "write-through on the write-heavy workload for btree/"
                 "alex/lipp (never more on any cell), with validated, "
                 "byte-identical answers; throughput rises accordingly.",
    },
    "fault_sweep": {
        "artifact": "Extension (self-healing storage)",
        "paper": "The paper assumes a faithful device; production "
                 "disk-resident stores checksum every block and repair "
                 "from redundancy (cf. ARIES-style media recovery).",
        "shape": "The zero-rate row has zero retries/failures/repairs and "
                 "checksums add zero extra block accesses; as the "
                 "transient rate sweeps 1e-4 -> 1e-2, retries grow "
                 "roughly proportionally while every detected corruption "
                 "is repaired from checkpoint + WAL redo with no lost "
                 "acknowledged writes and throughput degrades gracefully.",
    },
    "concurrency": {
        "artifact": "Extension (concurrent multi-client serving)",
        "paper": "The paper drives each index with a single client "
                 "stream; a disk-resident DBMS serves many sessions over "
                 "one shared index, where group commit and latching "
                 "dominate (cf. its Section 7 discussion of DBMS "
                 "integration).",
        "shape": "Cross-client group commit amortizes log flushes: "
                 "flushes per committed write fall monotonically from "
                 "1.0 at one client to <= 1/4 of that by 64 clients on "
                 "every device/index cell. Latch-stall time grows with "
                 "client count under zipfian skew while snapshot reads "
                 "charge zero latch-wait at every cell; client-perceived "
                 "p99 widens with contention even though per-op device "
                 "work is unchanged.",
    },
    "sharding": {
        "artifact": "Extension (sharded, replicated storage tier)",
        "paper": "The paper evaluates one index on one disk; its design-"
                 "choice rules (P1-P5) are per-workload, which a "
                 "partitioned DBMS can apply per key range — different "
                 "index classes on different shards of one table.",
        "shape": "Scale-out: charged read positionings per uniform "
                 "lookup fall >= 2x at 4 shards (aggregate per-shard "
                 "pools) and monotonically with the shard count on every "
                 "device/distribution cell. Replica read fan-out over "
                 "identical copies leaves p99 unchanged. Under a skewed "
                 "mixed stream the P1-P5 tuner assigns divergent "
                 "per-shard classes (read-only range -> hybrid, "
                 "read-heavy -> ALEX, write-heavy -> B+-tree) and the "
                 "divergent tier charges less total positioning I/O "
                 "than any uniform writable choice; routing through a "
                 "1-shard tier charges zero extra positionings.",
    },
    "compression": {
        "artifact": "Extension (compressed leaf pages)",
        "paper": "The SIGMOD 2024 follow-up (\"Making In-Memory Learned "
                 "Indexes Efficient on Disk\") identifies page compression "
                 "as the biggest remaining lever for disk-resident learned "
                 "indexes: packing more entries per block shrinks the leaf "
                 "file and the I/O per lookup.",
        "shape": "FoR packs >= 2x the entries per leaf block on "
                 "btree/pgm/hybrid (delta hovers at ~2x) and, against the "
                 "same fixed-size buffer pool, charges <= 70% of the raw "
                 "layout's read blocks per uniform lookup (pgm reaches "
                 "~0.2x: one data page vs a straddling epsilon window and "
                 "far better pool coverage). The extended Table 2 model's "
                 "per-entry decode term narrows but never closes the gap "
                 "on the SSD profile.",
    },
    "chaos": {
        "artifact": "Extension (fault-tolerant serving)",
        "paper": "The paper's clean-run evaluation assumes every device "
                 "answers; a replicated disk-resident tier must keep "
                 "serving through member failures (cf. hedged requests "
                 "in \"The Tail at Scale\" and primary failover in "
                 "replicated B-tree stores).",
        "shape": "Zero lost acknowledged writes at every fault rate, "
                 "replica count and failure mode (the audit replays "
                 "every durable log record against the serving tier). "
                 "The zero-rate rows are charged-counter bit-identical "
                 "to a tier built without any fault machinery. With "
                 "hedging, serving p99 against a degraded or crashed "
                 "replica stays within 3x of the same cell's fault-free "
                 "p99. A crashed replica quarantines after hedged "
                 "reads and rejoins via catch-up resync (charged log "
                 "scan, byte-verified); a crashed primary fails over "
                 "live with sequence numbering unbroken; write-path "
                 "faults taint the member and force the full re-seed.",
    },
    "wallclock": {
        "artifact": "Extension (vectorized execution)",
        "paper": "The paper measures real elapsed time on real devices; "
                 "this reproduction charges a simulated cost model, so "
                 "its Python execution speed is normally invisible. This "
                 "experiment times the interpreter itself.",
        "shape": "Vectorized batch-64 lookups beat the scalar path on "
                 "real wall-clock for every index — >= 3x for B+-tree "
                 "and hybrid (whose scalar paths materialize full tuple "
                 "lists per node) and >= 1.6x for ALEX/PGM (whose scalar "
                 "paths already probe in place) — while the charged "
                 "StorageStats stay bit-identical between the two modes "
                 "on every cell.",
    },
}

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated by this
repository's benchmark suite (`pytest benchmarks/ --benchmark-only`) on
the simulated block device at the scaled-down defaults (see DESIGN.md
for scales and the substitution argument).  Absolute numbers differ from
the authors' hardware by construction; the *shape* — who wins, by
roughly what factor, where crossovers fall — is what each entry records,
and the shape assertions are executable (`tests/test_paper_shape.py` and
the `benchmarks/bench_*.py` assertions).

Regenerate this file with `python -m repro.bench report` after a
benchmark run.
"""


def render_experiments_md(results_dir: str = "benchmarks/results") -> str:
    """Assemble the EXPERIMENTS.md text from archived result tables."""
    directory = pathlib.Path(results_dir)
    sections = [_HEADER]
    for experiment_id, info in PAPER_EXPECTATIONS.items():
        sections.append(f"\n## {info['artifact']} (`{experiment_id}`)\n")
        sections.append(f"**Paper:** {info['paper']}\n")
        sections.append(f"**Reproduced shape:** {info['shape']}\n")
        measured: Optional[str] = None
        path = directory / f"{experiment_id}.txt"
        if path.exists():
            measured = path.read_text().rstrip()
        if measured:
            sections.append("\n<details><summary>Measured rows</summary>\n")
            sections.append("```\n" + measured + "\n```")
            sections.append("</details>\n")
        else:
            sections.append("\n*(no archived result yet — run the benchmark suite)*\n")
    return "\n".join(sections) + "\n"
