"""Experiment scales and shared experiment plumbing.

The paper runs 200M-key bulk loads and 10M-op workloads on real disks;
the default scale here is chosen so the *entire* table/figure suite runs
in minutes of wall-clock time while preserving every comparative result
(see DESIGN.md for the substitution argument).  Every size can be scaled
with the ``REPRO_SCALE`` environment variable or per-call overrides.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Optional

from ..core import DiskIndex, make_index
from ..datasets import make_dataset
from ..durability import WriteAheadLog
from ..storage import (HDD, SSD, BlockDevice, DiskProfile, Pager,
                       make_buffer_pool)
from ..workloads import WORKLOADS, build_workload, bulk_load_timed

__all__ = ["Scale", "default_scale", "IndexSetup", "fresh_index",
           "fresh_sharded_index", "PROFILES", "tracing", "set_active_tracer",
           "set_codec", "set_write_back"]

PROFILES = {"hdd": HDD, "ssd": SSD}

#: When set, :func:`fresh_index` attaches this tracer to every index it
#: builds — the mechanism behind ``python -m repro.bench run X --trace``.
#: Experiments build one device per cell, so the tracer accumulates
#: totals across every device it gets bound to.
_ACTIVE_TRACER = None

#: When > 0, :func:`fresh_index` builds every index with a write-back
#: pager over a buffer pool of at least this many blocks — the mechanism
#: behind ``python -m repro.bench run X --write-back N``.  0 keeps each
#: call's own arguments (the default write-through).
_WRITE_BACK_BLOCKS = 0


def set_write_back(blocks: int) -> None:
    """Force write-back (with >= ``blocks`` pool frames) on fresh_index.

    Pass 0 to clear.  Cells that already request a larger pool keep it.
    """
    global _WRITE_BACK_BLOCKS
    if blocks < 0:
        raise ValueError(f"blocks must be non-negative, got {blocks}")
    _WRITE_BACK_BLOCKS = blocks


#: When not "raw", :func:`fresh_index` builds every index with this leaf
#: codec (DESIGN.md Section 16) unless the cell pins its own — the
#: mechanism behind ``python -m repro.bench run X --codec for``.  Indexes
#: whose layout cannot compress (fixed-stride model addressing) validate
#: the name and keep their raw layout.
_ACTIVE_CODEC = "raw"


def set_codec(codec: str) -> None:
    """Force a leaf codec on every index fresh_index builds.

    Pass "raw" to clear.  Cells that pass an explicit ``codec`` in their
    ``index_params`` keep it.
    """
    from ..core import get_codec

    global _ACTIVE_CODEC
    _ACTIVE_CODEC = get_codec(codec).name


def set_active_tracer(tracer) -> None:
    """Set (or clear, with None) the tracer fresh_index attaches."""
    global _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer


@contextmanager
def tracing(tracer):
    """Attach ``tracer`` to every index built inside the block."""
    set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(None)


@dataclass(frozen=True)
class Scale:
    """All experiment sizes, scaled from the paper by a constant factor.

    Paper values: 200M keys for read-only workloads (800M for the
    scalability set), 10M bulk + 10M ops for write workloads, 200K
    sampled lookups.  The default divides key counts by 1000 and op
    counts by about 20 (operations dominate Python wall-clock).
    """

    n_read: int = 200_000       # keys bulk loaded for read-only workloads
    n_write_bulk: int = 30_000  # keys bulk loaded before write workloads
    n_write_ops: int = 30_000   # operations in write / mixed workloads
    n_lookup_ops: int = 2_000   # sampled lookups (paper: 200K)
    n_scan_ops: int = 400       # scan operations (scans cost ~100x a lookup)
    scan_length: int = 100      # elements per scan (paper: 100)
    block_size: int = 4096
    seed: int = 42
    group_commit: int = 8       # WAL ops per log flush (durability experiment)

    def scaled(self, factor: float) -> "Scale":
        return replace(
            self,
            n_read=int(self.n_read * factor),
            n_write_bulk=int(self.n_write_bulk * factor),
            n_write_ops=int(self.n_write_ops * factor),
            n_lookup_ops=int(self.n_lookup_ops * factor),
            n_scan_ops=int(self.n_scan_ops * factor),
        )


def default_scale() -> Scale:
    """The default scale, honoring the ``REPRO_SCALE`` env multiplier."""
    scale = Scale()
    factor = os.environ.get("REPRO_SCALE")
    if factor:
        scale = scale.scaled(float(factor))
    return scale


@dataclass
class IndexSetup:
    """One bulk-loaded index with its device, pager and workload stream."""

    index: DiskIndex
    device: BlockDevice
    pager: Pager
    bulk_items: list
    ops: list
    bulkload_us: float
    wal: Optional[WriteAheadLog] = None


def fresh_index(index_name: str, dataset: str, workload: str, scale: Scale,
                profile: DiskProfile = HDD, block_size: Optional[int] = None,
                buffer_blocks: int = 0, index_params: Optional[dict] = None,
                inner_memory_resident: bool = False, with_wal: bool = False,
                wal_group_commit: Optional[int] = None,
                write_back: bool = False, buffer_policy: str = "lru",
                flush_watermark: Optional[int] = None,
                lookup_distribution: str = "uniform", zipf_s: float = 0.99,
                hotspot_fraction: float = 0.2,
                hotspot_probability: float = 0.8) -> IndexSetup:
    """Build a device + index + workload for one experiment cell.

    ``with_wal`` attaches a write-ahead log (on the same device, as in a
    single-disk DBMS) after the bulk load, group-committing every
    ``scale.group_commit`` operations; ``wal_group_commit`` overrides
    that batch size (and implies ``with_wal``).  The default is no
    logging — the paper's setting.

    ``write_back`` buffers writes as dirty pool frames and flushes them
    in coalesced runs (requires ``buffer_blocks > 0``); ``buffer_policy``
    picks the pool's replacement policy and ``flush_watermark``
    optionally bounds how many dirty pages accumulate before a forced
    flush.  The module-level :func:`set_write_back` override (the CLI's
    ``--write-back N``) forces write-back on every cell.

    ``lookup_distribution`` (with ``zipf_s`` / ``hotspot_fraction`` /
    ``hotspot_probability``) skews the workload's lookup and scan targets
    — see :data:`repro.workloads.DISTRIBUTIONS`; the default is the
    paper's uniform sampling.
    """
    spec = WORKLOADS[workload]
    if spec.bulk_all:
        n_keys = scale.n_read
        num_ops = scale.n_scan_ops if "S" in spec.round_pattern else scale.n_lookup_ops
    else:
        num_ops = scale.n_write_ops
        num_inserts = sum(
            1 for i in range(num_ops)
            if spec.round_pattern[i % len(spec.round_pattern)] == "I"
        )
        # The dataset provides the bulk-loaded keys plus the withheld
        # insert keys, so the bulk size matches the paper's setup exactly.
        n_keys = scale.n_write_bulk + num_inserts
    keys = make_dataset(dataset, n_keys, seed=scale.seed)
    bulk_items, ops = build_workload(
        spec, keys, num_ops, seed=scale.seed,
        lookup_distribution=lookup_distribution, zipf_s=zipf_s,
        hotspot_fraction=hotspot_fraction,
        hotspot_probability=hotspot_probability)

    if _WRITE_BACK_BLOCKS > 0:
        write_back = True
        buffer_blocks = max(buffer_blocks, _WRITE_BACK_BLOCKS)
    device = BlockDevice(block_size or scale.block_size, profile)
    pool = (make_buffer_pool(buffer_blocks, buffer_policy)
            if buffer_blocks > 0 else None)
    pager = Pager(device, buffer_pool=pool, write_back=write_back,
                  flush_watermark=flush_watermark)
    params = dict(index_params or {})
    if _ACTIVE_CODEC != "raw":
        params.setdefault("codec", _ACTIVE_CODEC)
    index = make_index(index_name, pager, **params)
    if _ACTIVE_TRACER is not None:
        # Attach before the bulk load so its I/O lands in the trace's
        # background record and the totals reconcile with device stats.
        index.attach_tracer(_ACTIVE_TRACER)
    bulkload_us = bulk_load_timed(index, bulk_items)
    if write_back:
        # Bulk load is a workload phase: its boundary flushes the dirty
        # pages, and the coalesced flush cost belongs to the bulk load.
        before_us = device.stats.elapsed_us
        pager.flush()
        bulkload_us += device.stats.elapsed_us - before_us
    if inner_memory_resident:
        index.set_inner_memory_resident(True)
    wal = None
    if with_wal or wal_group_commit is not None:
        batch = wal_group_commit if wal_group_commit is not None else scale.group_commit
        wal = WriteAheadLog(pager, group_commit=batch)
        index.attach_wal(wal)
    return IndexSetup(index=index, device=device, pager=pager,
                      bulk_items=bulk_items, ops=ops, bulkload_us=bulkload_us,
                      wal=wal)


def fresh_sharded_index(index_names, shards: Optional[int], dataset: str,
                        workload: str, scale: Scale,
                        profile: DiskProfile = HDD,
                        block_size: Optional[int] = None,
                        buffer_blocks: int = 0, replicas: int = 1,
                        replica_policy: str = "round_robin",
                        durability: bool = False,
                        wal_group_commit: Optional[int] = None,
                        hedge_us: Optional[float] = None,
                        quarantine_after: int = 2,
                        lookup_distribution: str = "uniform",
                        zipf_s: float = 0.99) -> IndexSetup:
    """Build a range-partitioned :class:`repro.sharding.ShardedIndex` cell.

    Mirrors :func:`fresh_index`: same dataset, same workload stream, same
    scale — but the index is a sharded tier whose boundaries come from
    the bulk keys' quantiles, so every shard loads an equal slice.
    ``index_names`` is one registry name (uniform tier, needs ``shards``)
    or a per-shard list (divergent tier).  ``buffer_blocks`` is *per
    member*: the tier's aggregate cache grows with the shard count,
    which is the scale-out effect the ``sharding`` experiment measures.
    The returned setup's ``device`` / ``pager`` / ``wal`` are the tier's
    fan-out facades, so every downstream consumer reads combined stats.
    """
    from ..core import make_sharded_index

    spec = WORKLOADS[workload]
    if spec.bulk_all:
        n_keys = scale.n_read
        num_ops = scale.n_scan_ops if "S" in spec.round_pattern else scale.n_lookup_ops
    else:
        num_ops = scale.n_write_ops
        num_inserts = sum(
            1 for i in range(num_ops)
            if spec.round_pattern[i % len(spec.round_pattern)] == "I")
        n_keys = scale.n_write_bulk + num_inserts
    keys = make_dataset(dataset, n_keys, seed=scale.seed)
    bulk_items, ops = build_workload(
        spec, keys, num_ops, seed=scale.seed,
        lookup_distribution=lookup_distribution, zipf_s=zipf_s)

    index = make_sharded_index(
        index_names, shards,
        sample_keys=[key for key, _ in bulk_items],
        replicas=replicas, replica_policy=replica_policy,
        durability=durability,
        group_commit=(wal_group_commit if wal_group_commit is not None
                      else scale.group_commit),
        hedge_us=hedge_us, quarantine_after=quarantine_after,
        profile=profile, block_size=block_size or scale.block_size,
        buffer_blocks=buffer_blocks)
    bulkload_us = bulk_load_timed(index, bulk_items)
    return IndexSetup(index=index, device=index.device, pager=index.pager,
                      bulk_items=bulk_items, ops=ops, bulkload_us=bulkload_us,
                      wal=index.wal)
