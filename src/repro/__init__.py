"""repro — disk-resident updatable learned indexes.

A ground-up Python reproduction of *"Updatable Learned Indexes Meet
Disk-Resident DBMS — From Evaluations to Design Choices"* (Lan, Bao,
Culpepper, Borovica-Gajic; SIGMOD / PACMMOD 2023).

Quick start::

    from repro import BlockDevice, Pager, HDD, make_index

    device = BlockDevice(block_size=4096, profile=HDD)
    index = make_index("alex", Pager(device))
    index.bulk_load([(k, k + 1) for k in range(0, 1_000_000, 10)])
    index.insert(5, 6)
    assert index.lookup(5) == 6
    print(device.stats.reads, "blocks fetched so far")

Packages:

* :mod:`repro.storage` — simulated block device, pager, LRU buffer pool,
  HDD/SSD latency profiles.
* :mod:`repro.models` — linear models, optimal/greedy PLA segmentation,
  FMCD.
* :mod:`repro.core` — the five on-disk indexes (B+-tree, FITing-tree,
  PGM, ALEX, LIPP) and the Table 5 hybrid designs.
* :mod:`repro.datasets` — the eleven synthetic datasets + Table 3
  profiling.
* :mod:`repro.workloads` — the six workload types and the metric runner.
* :mod:`repro.durability` — write-ahead log with group commit,
  crash-fault injection, checkpoint + WAL-replay recovery, and
  WAL-assisted self-healing repair of corrupt blocks.
* :mod:`repro.obs` — op-level tracing, latency/IO histograms, and trace
  analysis (``python -m repro.obs.analyze trace.jsonl``).
* :mod:`repro.bench` — one experiment per paper table/figure
  (``python -m repro.bench all``).
"""

from .core import (
    AlexIndex,
    BTreeIndex,
    DiskIndex,
    FitingTreeIndex,
    HybridIndex,
    LippIndex,
    PgmIndex,
    PlidIndex,
    index_names,
    load_index,
    make_index,
    save_index,
)
from .datasets import dataset_names, make_dataset, profile_dataset
from .durability import (
    FaultInjector,
    SelfHealer,
    WriteAheadLog,
    recover,
    repair_blocks,
    restore_index,
    take_checkpoint,
)
from .models import LinearModel, optimal_segments, shrinking_cone_segments
from .obs import Histogram, Tracer
from .storage import (
    HDD,
    SSD,
    BlockDevice,
    BufferPool,
    ChecksumError,
    DeviceFaultModel,
    DiskProfile,
    Pager,
    PersistentIOError,
    StorageFault,
    TransientIOError,
)
from .workloads import WORKLOADS, build_workload, run_workload

__version__ = "1.0.0"

__all__ = [
    "AlexIndex",
    "BTreeIndex",
    "BlockDevice",
    "BufferPool",
    "ChecksumError",
    "DeviceFaultModel",
    "DiskIndex",
    "DiskProfile",
    "FaultInjector",
    "FitingTreeIndex",
    "HDD",
    "Histogram",
    "HybridIndex",
    "LinearModel",
    "LippIndex",
    "Pager",
    "PersistentIOError",
    "PgmIndex",
    "PlidIndex",
    "SSD",
    "SelfHealer",
    "StorageFault",
    "Tracer",
    "TransientIOError",
    "WORKLOADS",
    "WriteAheadLog",
    "__version__",
    "build_workload",
    "dataset_names",
    "index_names",
    "make_dataset",
    "load_index",
    "make_index",
    "save_index",
    "optimal_segments",
    "profile_dataset",
    "recover",
    "repair_blocks",
    "restore_index",
    "run_workload",
    "shrinking_cone_segments",
    "take_checkpoint",
]
