"""Observability: op-level tracing, metrics, and trace analysis.

The paper's whole argument rests on *counting block fetches per
operation* (observations O1/O4/O13); :class:`StorageStats` gives the
end-of-run totals, this package gives the per-operation breakdown behind
them:

* :mod:`repro.obs.metrics` — counters and fixed-bucket latency/IO
  histograms (p50/p90/p99/max at O(buckets) memory);
* :mod:`repro.obs.trace` — a :class:`Tracer` that scopes every charged
  block access, buffer-pool probe, and WAL flush to the logical
  operation in flight, ring-buffers one structured event per op, and
  exports JSONL whose totals reconcile *exactly* with ``StorageStats``;
* :mod:`repro.obs.analyze` — summarizes a trace file: top-K most
  expensive ops, SMO cascade detection, buffer-pool hit-rate timeline
  (``python -m repro.obs.analyze trace.jsonl``).

Tracing is opt-in: with no tracer attached every hook is ``None`` and
the hot paths pay a single attribute check per access.
"""

from .metrics import Counter, Histogram, MetricsRegistry, io_bounds, latency_bounds
from .trace import TRACE_SCHEMA_VERSION, Tracer

_ANALYZE_NAMES = ("format_summary", "load_trace", "summarize", "analyze_main")


def __getattr__(name):
    # Lazy so ``python -m repro.obs.analyze`` does not re-import the
    # module it is about to execute (runpy would warn).
    if name in _ANALYZE_NAMES:
        from . import analyze

        return getattr(analyze, "main" if name == "analyze_main" else name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "analyze_main",
    "format_summary",
    "io_bounds",
    "latency_bounds",
    "load_trace",
    "summarize",
]
