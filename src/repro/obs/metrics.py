"""Counters and fixed-bucket histograms.

The paper reports averages (blocks per op, phase latency) and two tail
points (p50/p99, Figure 12); anything finer — "what does the p90 insert
pay in the SMO phase?" — needs a distribution, not a scalar.  A
fixed-bucket histogram records a value with one bisect into a static
boundary list, keeps O(buckets) memory regardless of how many operations
run, and merges across runs by adding counts, which is what a sharded
deployment needs (per-shard histograms sum into the fleet view; raw
latency arrays do not).

Percentiles are estimated by linear interpolation inside the covering
bucket, with the overflow bucket clamped to the observed maximum — the
standard Prometheus/HdrHistogram trade-off: a bounded relative error set
by the bucket spacing, in exchange for constant memory.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "latency_bounds",
    "io_bounds",
]


def latency_bounds(low_us: float = 10.0, high_us: float = 1e8,
                   per_decade: int = 4) -> Tuple[float, ...]:
    """Geometric bucket boundaries for simulated-microsecond latencies.

    The defaults span 10 µs (one sequential SSD block) to 100 s of
    simulated time with ``per_decade`` buckets per decade — a worst-case
    relative error of ``10**(1/per_decade) - 1`` (~78% at 4/decade),
    which is tighter than the >2x gaps between the paper's reported
    percentiles.
    """
    bounds = []
    value = low_us
    ratio = 10.0 ** (1.0 / per_decade)
    while value < high_us:
        bounds.append(round(value, 6))
        value *= ratio
    # Float drift can make the last generated bound round to high_us
    # itself; only append the cap when it still extends the range.
    if not bounds or bounds[-1] < high_us:
        bounds.append(high_us)
    return tuple(bounds)


def io_bounds(max_blocks: int = 512) -> Tuple[float, ...]:
    """Bucket boundaries for per-op block counts.

    Exact up to 16 blocks (the region Table 4 cares about — every studied
    index fetches 1..10 blocks per lookup), then doubling up to
    ``max_blocks`` to keep SMO cascades distinguishable from single-block
    writes.
    """
    bounds = list(range(0, 17))
    value = 24
    while value < max_blocks:
        bounds.append(value)
        value *= 2
    bounds.append(max_blocks)
    return tuple(float(b) for b in bounds)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Fixed-boundary histogram with percentile estimation.

    Args:
        bounds: strictly increasing bucket upper boundaries.  A value
            ``v`` lands in the first bucket whose boundary is ``>= v``;
            values above the last boundary land in one overflow bucket.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b >= a for b, a in zip(bounds, list(bounds)[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # + overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0 <= q <= 100).

        Linear interpolation inside the covering bucket; the overflow
        bucket and the global extremes are clamped to observed min/max,
        so ``percentile(100)`` is exact.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else (self.min or 0.0)
                hi = self.bounds[i] if i < len(self.bounds) else (self.max or lo)
                fraction = (rank - seen) / bucket_count
                value = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                # Never report outside the observed range.
                value = max(value, self.min if self.min is not None else value)
                return min(value, self.max if self.max is not None else value)
            seen += bucket_count
        return self.max or 0.0  # pragma: no cover - unreachable

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical boundaries into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different boundaries")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def summary(self) -> Dict[str, float]:
        """The fixed digest reported on results: count/mean/p50/p90/p99/max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max if self.max is not None else 0.0,
        }


class MetricsRegistry:
    """A flat namespace of counters and histograms.

    One registry per traced component; ``counter``/``histogram`` are
    get-or-create so call sites never need existence checks.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter(name)
            return c

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram(bounds or latency_bounds())
            return h

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view: counter values and histogram digests."""
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "histograms": {name: h.summary() for name, h in self.histograms.items()},
        }
