"""Op-scoped structured tracing.

One :class:`Tracer` observes every layer of the stack at once:

* the :class:`~repro.storage.BlockDevice` per-access hook attributes each
  charged block read/write (and its simulated cost) to the operation in
  flight, by phase;
* the buffer pool reports hits and misses, the pager reports last-block
  reuse hits;
* the write-ahead log reports group-commit flushes.

Between :meth:`begin_op` and :meth:`end_op` everything accumulates into
one *span*; ``end_op`` freezes the span into an event dict and appends it
to a bounded ring buffer.  I/O observed outside any span (bulk loads,
recovery, the WAL's tail flush) accumulates into a single *background*
record, and events evicted from the ring buffer are folded into one
*evicted* record instead of being dropped — so the exported trace always
accounts for every charged access:

    sum over all exported records of reads/writes/µs per phase
        == the device's ``StorageStats`` delta since :meth:`bind`.

The tracer also keeps per-phase running totals updated access-by-access
in exactly the order the device updates ``StorageStats``, so the
``summary`` record's µs figures are bitwise identical to the device's
(same float additions in the same sequence), not merely close.

When no tracer is bound the hooks are ``None`` and every layer pays one
attribute check per access — the disabled path stays allocation-free.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

__all__ = ["Tracer", "TRACE_SCHEMA_VERSION"]

#: Bumped whenever the exported record layout changes.
#: 2: added per-span ``flushes``/``flushed_blocks``/``dirty_evictions``
#: (write-back pager events; their I/O costs flow through the per-access
#: hook as before, so the exactness invariant is unchanged).
#: 3: added per-span ``io_retries``/``checksum_failures``/``repaired_blocks``
#: (self-healing storage).  Retry backoff is charged as latency without a
#: block transfer, so :meth:`Tracer.io_retry` folds it into the span's and
#: the running ``us_by_phase`` totals directly — reconciliation stays
#: bitwise.
#: 4: added per-span ``latch_waits``/``latch_wait_us`` (concurrent
#: serving engine).  Latch stalls are charged like retry backoff — pure
#: latency under the ``"latch"`` phase, no block transferred — so
#: :meth:`Tracer.latch_wait` folds them into the span's and the running
#: ``us_by_phase`` totals the same way, keeping reconciliation bitwise.
#: 5: added per-span ``failovers``/``hedged_reads``/``resync_blocks``/
#: ``shed_ops`` (fault-tolerant sharded serving).  All four are pure
#: counters: their I/O costs (WAL redo, replayed records, re-issued
#: reads) flow through the per-access hook and the existing
#: ``io_retry`` latency path, so the exactness invariant is unchanged.
TRACE_SCHEMA_VERSION = 5


def _blank_span(type_: str) -> dict:
    return {
        "type": type_,
        "us": 0.0,
        "reads": {},
        "writes": {},
        "us_by_phase": {},
        "files": {},
        "pool_hits": 0,
        "pool_misses": 0,
        "reuse_hits": 0,
        "coalesced_runs": 0,
        "coalesced_blocks": 0,
        "wal_records": 0,
        "wal_flushes": 0,
        "flushes": 0,
        "flushed_blocks": 0,
        "dirty_evictions": 0,
        "io_retries": 0,
        "checksum_failures": 0,
        "repaired_blocks": 0,
        "latch_waits": 0,
        "latch_wait_us": 0.0,
        "failovers": 0,
        "hedged_reads": 0,
        "resync_blocks": 0,
        "shed_ops": 0,
    }


class Tracer:
    """Structured event recorder with a bounded ring buffer.

    Args:
        capacity: maximum op events retained; older events are folded
            into the ``evicted`` aggregate (their I/O is never lost, only
            their per-op identity).
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: Deque[dict] = deque()
        self.dropped_ops = 0
        self._evicted = _blank_span("evicted")
        self._background = _blank_span("background")
        self._current: Optional[dict] = None
        self._wal = None
        self._wal_records_at_begin = 0
        # Per-phase running totals, accumulated access-by-access in the
        # same order as the device's StorageStats (bitwise reconciliation).
        self._total_reads: Dict[str, int] = {}
        self._total_writes: Dict[str, int] = {}
        self._total_us: Dict[str, float] = {}
        self._pagers: List[object] = []

    def __len__(self) -> int:
        return len(self.events)

    # -- wiring ------------------------------------------------------------

    def bind(self, pager, wal=None) -> None:
        """Subscribe to a pager's device, buffer pool, and optionally a WAL.

        A tracer may be bound to several pagers (a benchmark builds one
        device per experiment cell); totals then cover all of them.
        """
        if pager not in self._pagers:
            pager.device.on_access = self._on_access
            pager.device.on_run = self._on_run
            pager.device.on_fault = self._on_fault
            pager.tracer = self
            if pager.buffer_pool is not None:
                pager.buffer_pool.listener = self
            self._pagers.append(pager)
        if wal is not None:
            self.bind_wal(wal)

    def bind_wal(self, wal) -> None:
        self._wal = wal
        wal.on_flush = self._on_wal_flush

    def unbind(self) -> None:
        """Detach all hooks; the traced components return to zero overhead."""
        for pager in self._pagers:
            pager.device.on_access = None
            pager.device.on_run = None
            pager.device.on_fault = None
            pager.tracer = None
            if pager.buffer_pool is not None:
                pager.buffer_pool.listener = None
        self._pagers.clear()
        if self._wal is not None:
            self._wal.on_flush = None
            self._wal = None

    @property
    def devices(self) -> list:
        """The devices currently observed (for reconciliation checks)."""
        return [pager.device for pager in self._pagers]

    # -- span lifecycle ----------------------------------------------------

    def begin_op(self, op: str, key: int, op_index: int) -> None:
        """Open a span; all hook callbacks accumulate into it until end_op."""
        if self._current is not None:
            raise RuntimeError(
                f"op span {self._current['i']} still open; end_op it first")
        span = _blank_span("op")
        span["i"] = op_index
        span["op"] = op
        span["key"] = key
        self._current = span
        self._wal_records_at_begin = (
            self._wal.records_appended if self._wal is not None else 0)

    def end_op(self) -> dict:
        """Close the current span, ring-buffer it, and return the event."""
        span = self._current
        if span is None:
            raise RuntimeError("no op span open")
        self._current = None
        if self._wal is not None:
            span["wal_records"] = (
                self._wal.records_appended - self._wal_records_at_begin)
        span["us"] = sum(span["us_by_phase"].values())
        self.events.append(span)
        if len(self.events) > self.capacity:
            self._fold(self.events.popleft())
        return span

    @contextmanager
    def op(self, op: str, key: int, op_index: int) -> Iterator[dict]:
        """Context-manager form of begin_op/end_op."""
        self.begin_op(op, key, op_index)
        try:
            yield self._current
        finally:
            self.end_op()

    def _fold(self, event: dict) -> None:
        agg = self._evicted
        agg["us"] += event["us"]
        for field in ("reads", "writes", "files"):
            for k, v in event[field].items():
                agg[field][k] = agg[field].get(k, 0) + v
        for k, v in event["us_by_phase"].items():
            agg["us_by_phase"][k] = agg["us_by_phase"].get(k, 0.0) + v
        for field in ("pool_hits", "pool_misses", "reuse_hits",
                      "coalesced_runs", "coalesced_blocks",
                      "wal_records", "wal_flushes",
                      "flushes", "flushed_blocks", "dirty_evictions",
                      "io_retries", "checksum_failures", "repaired_blocks",
                      "latch_waits", "latch_wait_us",
                      "failovers", "hedged_reads", "resync_blocks",
                      "shed_ops"):
            agg[field] += event[field]
        self.dropped_ops += 1

    # -- hook callbacks ----------------------------------------------------

    def _on_access(self, kind: str, file_name: str, block_no: int,
                   phase: str, cost_us: float) -> None:
        """BlockDevice hook: one charged block access ("r" or "w")."""
        span = self._current if self._current is not None else self._background
        target = span["reads"] if kind == "r" else span["writes"]
        target[phase] = target.get(phase, 0) + 1
        span["us_by_phase"][phase] = span["us_by_phase"].get(phase, 0.0) + cost_us
        span["files"][file_name] = span["files"].get(file_name, 0) + 1
        totals = self._total_reads if kind == "r" else self._total_writes
        totals[phase] = totals.get(phase, 0) + 1
        self._total_us[phase] = self._total_us.get(phase, 0.0) + cost_us

    def pool_hit(self) -> None:
        span = self._current if self._current is not None else self._background
        span["pool_hits"] += 1

    def pool_miss(self) -> None:
        span = self._current if self._current is not None else self._background
        span["pool_misses"] += 1

    def reuse_hit(self) -> None:
        """Pager served the read from its one-block reuse cache."""
        span = self._current if self._current is not None else self._background
        span["reuse_hits"] += 1

    def _on_run(self, file_name: str, run_length: int) -> None:
        """BlockDevice hook: a multi-block contiguous run was coalesced."""
        span = self._current if self._current is not None else self._background
        span["coalesced_runs"] += 1
        span["coalesced_blocks"] += run_length

    def _on_wal_flush(self, records: int, blocks: int) -> None:
        span = self._current if self._current is not None else self._background
        span["wal_flushes"] += 1

    def pager_flush(self, blocks: int) -> None:
        """Write-back pager flushed ``blocks`` dirty pages in coalesced runs.

        The flush's block writes were already attributed access-by-access
        via :meth:`_on_access` (under the ``"flush"`` phase), so this only
        counts the event — typically it lands in the background record,
        as flushes happen at phase boundaries, outside any op span.
        """
        span = self._current if self._current is not None else self._background
        span["flushes"] += 1
        span["flushed_blocks"] += blocks

    def dirty_eviction(self) -> None:
        """Buffer pool evicted a dirty frame; the pager wrote it back."""
        span = self._current if self._current is not None else self._background
        span["dirty_evictions"] += 1

    def io_retry(self, phase: str, backoff_us: float) -> None:
        """Pager reissued a read after a transient device error.

        The backoff is pure latency — no block transferred — so it does
        not pass through :meth:`_on_access`; it is added to the span's
        and the running per-phase µs totals here, mirroring the order the
        device charges it, to keep reconciliation bitwise.
        """
        span = self._current if self._current is not None else self._background
        span["io_retries"] += 1
        span["us_by_phase"][phase] = span["us_by_phase"].get(phase, 0.0) + backoff_us
        self._total_us[phase] = self._total_us.get(phase, 0.0) + backoff_us

    def latch_wait(self, backoff_us: float) -> None:
        """Serving engine stalled the current op on another session's latch.

        Like :meth:`io_retry`, the stall is pure latency — no block
        transferred — so it does not pass through :meth:`_on_access`; it
        is added to the span's and the running per-phase µs totals here
        (under the ``"latch"`` phase), mirroring the order the device
        charges it, to keep reconciliation bitwise.
        """
        span = self._current if self._current is not None else self._background
        span["latch_waits"] += 1
        span["latch_wait_us"] += backoff_us
        span["us_by_phase"]["latch"] = span["us_by_phase"].get("latch", 0.0) + backoff_us
        self._total_us["latch"] = self._total_us.get("latch", 0.0) + backoff_us

    def _on_fault(self, kind: str, file_name: str, block_no: int) -> None:
        """BlockDevice hook: the read path hit an injected fault.

        ``kind`` is ``"checksum"``, ``"transient"``, or ``"persistent"``.
        Only checksum failures are counted per span — transient errors
        surface as :meth:`io_retry` calls and persistent ones as the
        exception ending the span.
        """
        if kind != "checksum":
            return
        span = self._current if self._current is not None else self._background
        span["checksum_failures"] += 1

    def blocks_repaired(self, count: int) -> None:
        """The repair path rewrote ``count`` corrupt blocks from redo."""
        span = self._current if self._current is not None else self._background
        span["repaired_blocks"] += count

    def failover(self) -> None:
        """A shard promoted a replica after quarantining its primary.

        Pure counter: the failover's WAL scan, redo and log rebuild all
        charge through :meth:`_on_access` as ordinary block I/O.
        """
        span = self._current if self._current is not None else self._background
        span["failovers"] += 1

    def hedged_read(self) -> None:
        """A read was re-issued on another healthy replica."""
        span = self._current if self._current is not None else self._background
        span["hedged_reads"] += 1

    def resync(self, blocks: int) -> None:
        """Catch-up resync replayed the missed WAL suffix from ``blocks``."""
        span = self._current if self._current is not None else self._background
        span["resync_blocks"] += blocks

    def shed_op(self) -> None:
        """The serving engine rejected an op at the admission gate."""
        span = self._current if self._current is not None else self._background
        span["shed_ops"] += 1

    # -- export ------------------------------------------------------------

    def totals(self) -> dict:
        """Per-phase totals over everything observed since bind()."""
        return {
            "reads": dict(self._total_reads),
            "writes": dict(self._total_writes),
            "us": dict(self._total_us),
        }

    def iter_records(self) -> Iterator[dict]:
        """All exportable records: summary, evicted, background, then ops.

        The summary's totals are authoritative (bitwise equal to the
        device counters); summing the remaining records reproduces them.
        """
        totals = self.totals()
        yield {
            "type": "summary",
            "schema": TRACE_SCHEMA_VERSION,
            "events": len(self.events),
            "dropped_ops": self.dropped_ops,
            "reads": totals["reads"],
            "writes": totals["writes"],
            "us_by_phase": totals["us"],
        }
        if self.dropped_ops:
            record = dict(self._evicted)
            record["ops_folded"] = self.dropped_ops
            yield record
        yield dict(self._background)
        for event in self.events:
            yield event

    def export_jsonl(self, path: str) -> int:
        """Write one JSON record per line; returns the number of lines."""
        lines = 0
        with open(path, "w") as handle:
            for record in self.iter_records():
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
                lines += 1
        return lines
