"""Trace-file analysis: where did the blocks go?

Reads the JSONL produced by :meth:`~repro.obs.Tracer.export_jsonl` and
answers the questions per-run aggregates cannot:

* **top-K most expensive ops** — which individual inserts paid for a
  structure modification (the paper's tail-latency discussion, Fig. 12);
* **SMO cascade detection** — ops whose SMO-phase block traffic exceeds a
  threshold, i.e. a split/retrain that rewrote many blocks at once;
* **hit-rate timeline** — buffer-pool hit rate per window of operations,
  showing cache warm-up and post-SMO cold misses;
* **reconciliation** — per-phase totals summed over every record, which
  must equal the device's ``StorageStats`` (asserted in the test suite).

Usable as a library or from the command line::

    python -m repro.obs.analyze trace.jsonl --top 10
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, Iterable, List, Optional

__all__ = ["load_trace", "summarize", "format_summary", "main"]

#: An op whose SMO phase touches at least this many blocks is a cascade —
#: a single-node split writes 2-4 blocks, so 8+ means the modification
#: propagated (FITing/ALEX resegmentation, PGM merge, LIPP subtree rebuild).
DEFAULT_CASCADE_BLOCKS = 8


def load_trace(path: str) -> List[dict]:
    """Read one JSONL trace file into a list of record dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _sum_phase_dicts(records: Iterable[dict], field: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for record in records:
        for phase, value in record.get(field, {}).items():
            out[phase] = out.get(phase, 0) + value
    return out


def _smo_blocks(record: dict) -> int:
    return (record.get("reads", {}).get("smo", 0)
            + record.get("writes", {}).get("smo", 0))


def summarize(records: List[dict], top_k: int = 10, windows: int = 20,
              cascade_blocks: int = DEFAULT_CASCADE_BLOCKS) -> dict:
    """Digest a loaded trace into a JSON-serializable summary dict."""
    ops = [r for r in records if r.get("type") == "op"]
    accounted = [r for r in records if r.get("type") in ("op", "evicted", "background")]
    summary_record = next((r for r in records if r.get("type") == "summary"), None)

    by_op: Dict[str, dict] = {}
    for record in ops:
        bucket = by_op.setdefault(record["op"], {
            "count": 0, "us": 0.0, "reads": 0, "writes": 0,
            "pool_hits": 0, "pool_misses": 0})
        bucket["count"] += 1
        bucket["us"] += record["us"]
        bucket["reads"] += sum(record["reads"].values())
        bucket["writes"] += sum(record["writes"].values())
        bucket["pool_hits"] += record["pool_hits"]
        bucket["pool_misses"] += record["pool_misses"]
    for bucket in by_op.values():
        bucket["mean_us"] = bucket["us"] / bucket["count"]

    top = sorted(ops, key=lambda r: r["us"], reverse=True)[:top_k]
    top_ops = [{
        "i": r["i"], "op": r["op"], "key": r["key"], "us": r["us"],
        "reads": sum(r["reads"].values()), "writes": sum(r["writes"].values()),
        "smo_blocks": _smo_blocks(r),
    } for r in top]

    cascades = sorted(
        ({"i": r["i"], "op": r["op"], "key": r["key"],
          "smo_blocks": _smo_blocks(r), "us": r["us"]}
         for r in ops if _smo_blocks(r) >= cascade_blocks),
        key=lambda c: c["smo_blocks"], reverse=True)

    timeline = []
    if ops and windows > 0:
        per_window = max(1, (len(ops) + windows - 1) // windows)
        for start in range(0, len(ops), per_window):
            chunk = ops[start:start + per_window]
            hits = sum(r["pool_hits"] for r in chunk)
            misses = sum(r["pool_misses"] for r in chunk)
            reuse = sum(r["reuse_hits"] for r in chunk)
            probes = hits + misses
            timeline.append({
                "first_i": chunk[0]["i"], "last_i": chunk[-1]["i"],
                "ops": len(chunk), "pool_hits": hits, "pool_misses": misses,
                "reuse_hits": reuse,
                "hit_rate": hits / probes if probes else None,
            })

    return {
        "num_ops": len(ops),
        "dropped_ops": summary_record["dropped_ops"] if summary_record else 0,
        "by_op": by_op,
        "top_ops": top_ops,
        "cascades": cascades,
        "cascade_blocks_threshold": cascade_blocks,
        "hit_rate_timeline": timeline,
        "reconciliation": {
            "reads": _sum_phase_dicts(accounted, "reads"),
            "writes": _sum_phase_dicts(accounted, "writes"),
            "us_by_phase": _sum_phase_dicts(accounted, "us_by_phase"),
        },
        "declared_totals": {
            "reads": summary_record.get("reads", {}),
            "writes": summary_record.get("writes", {}),
            "us_by_phase": summary_record.get("us_by_phase", {}),
        } if summary_record else None,
    }


def format_summary(summary: dict) -> str:
    """Render a summary dict as a plain-text report section."""
    lines = [f"trace: {summary['num_ops']} ops"
             + (f" ({summary['dropped_ops']} folded into the evicted aggregate)"
                if summary["dropped_ops"] else "")]

    if summary["by_op"]:
        lines.append("\nper op type:")
        for op, b in sorted(summary["by_op"].items()):
            lines.append(
                f"  {op:<8} x{b['count']:<7} mean {b['mean_us']:>10.1f} us   "
                f"reads {b['reads']}  writes {b['writes']}")

    if summary["top_ops"]:
        lines.append("\nmost expensive ops:")
        for r in summary["top_ops"]:
            lines.append(
                f"  #{r['i']:<7} {r['op']:<8} key={r['key']:<20} "
                f"{r['us']:>10.1f} us  r={r['reads']} w={r['writes']}"
                + (f"  smo={r['smo_blocks']}" if r["smo_blocks"] else ""))

    threshold = summary["cascade_blocks_threshold"]
    if summary["cascades"]:
        lines.append(f"\nSMO cascades (>= {threshold} smo-phase blocks): "
                     f"{len(summary['cascades'])}")
        for c in summary["cascades"][:10]:
            lines.append(
                f"  #{c['i']:<7} {c['op']:<8} key={c['key']:<20} "
                f"{c['smo_blocks']} blocks  {c['us']:.1f} us")
    else:
        lines.append(f"\nno SMO cascades (>= {threshold} smo-phase blocks)")

    probed = [w for w in summary["hit_rate_timeline"] if w["hit_rate"] is not None]
    if probed:
        lines.append("\nbuffer-pool hit rate timeline:")
        for w in summary["hit_rate_timeline"]:
            rate = w["hit_rate"]
            bar = "#" * int((rate or 0.0) * 40)
            shown = f"{rate:.2f}" if rate is not None else "  - "
            lines.append(f"  ops {w['first_i']:>7}..{w['last_i']:<7} {shown} |{bar}")

    recon = summary["reconciliation"]
    lines.append("\nper-phase totals (reads/writes/us):")
    for phase in sorted(set(recon["reads"]) | set(recon["writes"])
                        | set(recon["us_by_phase"])):
        lines.append(
            f"  {phase:<12} r={recon['reads'].get(phase, 0):<8} "
            f"w={recon['writes'].get(phase, 0):<8} "
            f"{recon['us_by_phase'].get(phase, 0.0):.1f} us")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Summarize a JSONL trace exported by repro.obs.Tracer.")
    parser.add_argument("trace", help="path to the .jsonl trace file")
    parser.add_argument("--top", type=int, default=10,
                        help="how many most-expensive ops to list")
    parser.add_argument("--windows", type=int, default=20,
                        help="windows in the hit-rate timeline")
    parser.add_argument("--cascade-blocks", type=int,
                        default=DEFAULT_CASCADE_BLOCKS,
                        help="SMO-phase blocks for an op to count as a cascade")
    args = parser.parse_args(argv)
    summary = summarize(load_trace(args.trace), top_k=args.top,
                        windows=args.windows,
                        cascade_blocks=args.cascade_blocks)
    print(format_summary(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
