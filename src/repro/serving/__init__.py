"""Concurrent multi-client serving engine.

Everything below the workload runner serves exactly one op stream; this
package interleaves N client streams over one shared index under the
simulated clock:

* :class:`Session` — one client's op queue plus its per-client metrics
  (latency samples, latch/commit waits, dispatch gaps);
* :class:`LatchManager` — frame-grain latches on the shared buffer pool
  and index structure, on the virtual timeline; conflicting accesses
  charge simulated latch-wait time the way the device charges
  positioning;
* :class:`ServingEngine` — a fair (minimum-virtual-time) scheduler that
  dispatches ops in simulated-time order, fills WAL commit groups from
  *all* sessions' pending writes (cross-client group commit), and serves
  reads snapshot-consistently pinned to the WAL's durable LSN so readers
  never wait on writer latches.

:func:`repro.workloads.run_workload` drives the engine via its
``clients=N`` / ``client_ops=...`` arguments and folds the engine's
report into the usual :class:`~repro.workloads.RunResult`.
"""

from .engine import ServeReport, ServingEngine, split_ops
from .latch import LatchManager
from .session import Session

__all__ = [
    "LatchManager",
    "ServeReport",
    "ServingEngine",
    "Session",
    "split_ops",
]
