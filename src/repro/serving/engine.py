"""The multi-client scheduler: fair dispatch, cross-client group commit,
snapshot reads.

The engine interleaves N sessions' op streams over one shared index.
Ops execute serially against the simulated device (one disk serializes
the I/O anyway), but each session keeps a *virtual clock*, and the
scheduler always dispatches the session whose clock is smallest — a
minimum-virtual-time policy that is fair by construction and orders
dispatches in simulated-time order.  Three concurrency phenomena are
modeled on that virtual timeline:

**Latching.**  While an op "runs" (its virtual interval), the frames it
read are held shared and the frames it wrote exclusive
(:class:`~repro.serving.latch.LatchManager`).  A conflicting access
stalls until the hold releases; the stall is charged to the device under
the ``"latch"`` phase — simulated time, exactly like positioning — and
counted in ``StorageStats`` and the op's trace span.

**Cross-client group commit.**  A write appends its WAL record and the
session then *blocks awaiting durability* (synchronous commit: nothing
is acknowledged before it is on disk).  The scheduler keeps dispatching
other sessions, so the commit group fills with records from every
client, and one log flush acknowledges them all — flushes per committed
write fall as client count grows.  A group flushes when it reaches
capacity, when every live session is blocked on it, when the oldest
waiter has waited ``commit_timeout_us`` of virtual time, or at the end
of the run.

**Snapshot reads.**  With ``snapshot_reads=True`` (the default), lookups
and scans are pinned to the WAL's durable LSN: a key whose insert is
appended but not yet durable is invisible, and the read neither consults
nor takes any latch — readers never wait on writers, and charge zero
latch-wait time.

**Deadlines, retries, admission (DESIGN.md Section 17).**  Three
optional robustness knobs, all off by default (and bit-identical to the
pre-knob engine when off):

* ``deadline_us`` — a per-op virtual-time deadline.  An op that
  completes later than ``start + deadline_us`` (group-commit wait
  included, for writes) still completes, but is counted in
  ``deadline_misses`` — the SLO-miss metric the chaos experiment bounds.
* ``retry_budget`` — a per-client budget of storage-fault
  re-executions.  A ``StorageFault`` escaping an op (the sharded tier
  only escalates one after hedging and failover are both exhausted)
  re-executes the op, charging the failed attempt's device time to the
  client's clock; when the budget is spent the op is *cleanly shed*
  instead — consumed, counted, never hung.
* ``max_inflight_writes`` / ``max_queue_delay_us`` — the admission
  gate.  A write arriving while the commit queue is already at the
  in-flight bound, or while its oldest waiter has been queued longer
  than the delay bound, is rejected before it touches the WAL or the
  index: nothing is charged, the client's clock does not advance, and
  ``shed_ops`` counts the rejection.  Overload degrades by shedding
  cleanly rather than by collapsing the commit path's p99.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.interface import DiskIndex
from ..durability.faults import CrashError, FaultInjector
from ..obs.metrics import Histogram, io_bounds, latency_bounds
from ..storage import StorageFault
from ..workloads.spec import Operation
from .latch import LatchManager
from .session import Session

__all__ = ["ServeReport", "ServingEngine", "split_ops"]


def split_ops(ops: Sequence[Operation], clients: int) -> List[List[Operation]]:
    """Deal one op stream round-robin to ``clients`` sessions.

    Stream order is preserved within each client, so a key is always
    inserted by exactly one session; lookups may race ahead of the
    insert that created their key — which is precisely the visibility
    question snapshot reads answer.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    return [list(ops[i::clients]) for i in range(clients)]


@dataclass
class _WaitingCommit:
    """One writer blocked awaiting group-commit durability."""

    session: Session
    seqno: int
    key: int
    payload: int
    start_v: float      # virtual time the op was dispatched
    end_v: float        # virtual time the op's device work finished
    dispatch_index: int


@dataclass
class ServeReport:
    """Everything one engine run measured, before RunResult folding."""

    sessions: List[Session]
    executed: int
    #: client-perceived µs per completed op, in dispatch order.
    latencies_us: np.ndarray
    #: op kind per completed op, aligned with ``latencies_us``.
    op_kinds: List[str]
    #: acknowledged writes as ``(seqno, key, payload)``, in commit order.
    committed: List[Tuple[int, int, int]]
    commit_groups: List[int] = field(default_factory=list)
    commit_waits: int = 0
    commit_wait_us: float = 0.0
    latch_waits: int = 0
    latch_wait_us: float = 0.0
    read_latch_wait_us: float = 0.0
    write_latch_wait_us: float = 0.0
    snapshot_reads: int = 0
    snapshot_suppressed: int = 0
    shed_ops: int = 0
    deadline_misses: int = 0
    op_retries: int = 0
    crashed_at_op: Optional[int] = None
    #: per-phase per-op µs digests (only when a tracer was attached).
    phase_hists: Optional[Dict[str, Histogram]] = None
    #: per-op-type blocks-touched digests (only when traced).
    io_hists: Optional[Dict[str, Histogram]] = None
    #: per client, per phase, the per-op µs digest (only when traced).
    client_phase_hists: Optional[Dict[int, Dict[str, Histogram]]] = None

    @property
    def committed_writes(self) -> int:
        return len(self.committed)

    @property
    def mean_commit_group(self) -> float:
        if not self.commit_groups:
            return 0.0
        return sum(self.commit_groups) / len(self.commit_groups)


class ServingEngine:
    """Interleave N client op streams over one shared index.

    Args:
        index: a bulk-loaded index (optionally with a WAL attached —
            required for group commit; without one, writes are
            acknowledged immediately).
        client_ops: one op stream per client.
        scan_length: elements per scan operation.
        validate: assert every lookup returns ``key + 1`` or None (the
            payload convention), and that snapshot suppression only ever
            hides genuinely not-yet-durable keys.
        snapshot_reads: serve lookups/scans at the WAL's durable LSN
            without taking latches (see module docstring).  With False,
            reads take shared latches and wait on writers.
        latching: model frame latches at all.  False turns the engine
            into a pure interleaver (used by equivalence tests).
        commit_group: commit-group capacity; a flush triggers when this
            many writers are pending.  Default: ``max(8, clients)``.
        commit_timeout_us: flush when the oldest pending writer has
            waited this much virtual time (None disables the timer).
        tracer: optional :class:`repro.obs.Tracer`; one span per op,
            latch stalls folded into the span under the ``"latch"``
            phase.  Defaults to the index's attached tracer.
        fault_injector: optional crash injector; ``maybe_crash`` fires
            on global dispatch indices, and the crash drops the WAL
            buffer and dirty pages exactly as in the single-client
            runner — blocked writers are never acknowledged.
        deadline_us: per-op virtual-time deadline; a completion later
            than this (commit wait included) counts a deadline miss.
            None disables the check.
        retry_budget: per-client count of storage-fault re-executions
            before the faulting op is cleanly shed (see module
            docstring).  0 means a fault sheds immediately.
        max_inflight_writes: admission bound on writers blocked in the
            commit queue; an arriving write is shed when the queue is
            already this deep.  None disables the bound.
        max_queue_delay_us: admission bound on commit-queue staleness;
            an arriving write is shed when the oldest waiter has been
            queued longer than this much virtual time.  None disables.
    """

    def __init__(self, index: DiskIndex, client_ops: Sequence[Sequence[Operation]],
                 *, scan_length: int = 100, validate: bool = False,
                 snapshot_reads: bool = True, latching: bool = True,
                 commit_group: Optional[int] = None,
                 commit_timeout_us: Optional[float] = 10_000.0,
                 tracer=None, fault_injector: Optional[FaultInjector] = None,
                 deadline_us: Optional[float] = None, retry_budget: int = 0,
                 max_inflight_writes: Optional[int] = None,
                 max_queue_delay_us: Optional[float] = None) -> None:
        if not client_ops:
            raise ValueError("need at least one client op stream")
        if commit_group is not None and commit_group < 1:
            raise ValueError(f"commit_group must be >= 1, got {commit_group}")
        if commit_timeout_us is not None and commit_timeout_us <= 0:
            raise ValueError(
                f"commit_timeout_us must be positive, got {commit_timeout_us}")
        if deadline_us is not None and deadline_us <= 0:
            raise ValueError(f"deadline_us must be positive, got {deadline_us}")
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        if max_inflight_writes is not None and max_inflight_writes < 1:
            raise ValueError(
                f"max_inflight_writes must be >= 1, got {max_inflight_writes}")
        if max_queue_delay_us is not None and max_queue_delay_us <= 0:
            raise ValueError(
                f"max_queue_delay_us must be positive, got {max_queue_delay_us}")
        self.index = index
        self.pager = index.pager
        self.device = index.pager.device
        self.wal = index.wal
        self.scan_length = scan_length
        self.validate = validate
        self.snapshot_reads = snapshot_reads
        self.latching = latching
        self.commit_group = (commit_group if commit_group is not None
                             else max(8, len(client_ops)))
        self.commit_timeout_us = commit_timeout_us
        self.tracer = tracer if tracer is not None else getattr(index, "tracer", None)
        self.fault_injector = fault_injector
        self.deadline_us = deadline_us
        self.retry_budget = retry_budget
        self.max_inflight_writes = max_inflight_writes
        self.max_queue_delay_us = max_queue_delay_us
        self._op_retries = 0
        self.sessions = [Session(i, ops) for i, ops in enumerate(client_ops)]
        self.latches = LatchManager()
        #: key -> seqno of its appended-but-not-yet-durable insert.
        self._pending_keys: Dict[int, int] = {}
        self._waiting: List[_WaitingCommit] = []
        self._committed: List[Tuple[int, int, int]] = []
        self._commit_groups: List[int] = []
        self._completed: List[Tuple[int, str, float]] = []  # (dispatch, kind, us)
        self._dispatch_count = 0
        self._cur_reads: set = set()
        self._cur_writes: set = set()
        self._phase_hists: Dict[str, Histogram] = {}
        self._io_hists: Dict[str, Histogram] = {}
        self._client_phase_hists: Dict[int, Dict[str, Histogram]] = {}

    # -- footprint capture ---------------------------------------------------

    def _note_access(self, kind: str, file_name: str, block_no: int) -> None:
        """Pager hook: record the frame in the in-flight op's footprint."""
        if kind == "r":
            self._cur_reads.add((file_name, block_no))
        else:
            self._cur_writes.add((file_name, block_no))

    # -- group commit --------------------------------------------------------

    def _should_flush(self, next_start_v: float) -> bool:
        if not self._waiting:
            return False
        if len(self._waiting) >= self.commit_group:
            return True
        if self.commit_timeout_us is not None:
            return self._waiting[0].end_v + self.commit_timeout_us <= next_start_v
        return False

    def _flush_group(self, trigger_v: Optional[float] = None) -> None:
        """Force the WAL durable and acknowledge every covered waiter.

        The flush's device time lands at ``max`` of the group's virtual
        end times (the disk cannot start the log write before the last
        record of the group exists) — or at ``trigger_v`` when the
        commit timer fired later than that.
        """
        if self.wal is None or not self._waiting:
            return
        base_v = max(waiter.end_v for waiter in self._waiting)
        if trigger_v is not None and trigger_v > base_v:
            base_v = trigger_v
        before_us = self.device.stats.elapsed_us
        self.wal.flush()
        ack_v = base_v + (self.device.stats.elapsed_us - before_us)
        durable = self.wal.durable_seqno
        acked = [w for w in self._waiting if w.seqno <= durable]
        if not acked:
            return
        self._waiting = [w for w in self._waiting if w.seqno > durable]
        self._commit_groups.append(len(acked))
        for waiter in acked:
            session = waiter.session
            wait_us = ack_v - waiter.end_v
            session.commit_waits += 1
            session.commit_wait_us += wait_us
            session.committed_writes += 1
            latency = ack_v - waiter.start_v
            if self.deadline_us is not None and latency > self.deadline_us:
                session.deadline_misses += 1
            session.latencies_us.append(latency)
            session.op_kinds.append("insert")
            session.clock_us = ack_v
            self._completed.append((waiter.dispatch_index, "insert", latency))
            self._committed.append((waiter.seqno, waiter.key, waiter.payload))
            self._pending_keys.pop(waiter.key, None)
            if session.remaining:
                heapq.heappush(self._heap, (session.clock_us, session.client_id))

    # -- op execution --------------------------------------------------------

    def _record_event(self, event: dict, kind: str, client_id: int) -> None:
        """Fold one trace event into the global and per-client digests."""
        for phase, us in event["us_by_phase"].items():
            hist = self._phase_hists.get(phase)
            if hist is None:
                hist = self._phase_hists[phase] = Histogram(latency_bounds())
            hist.record(us)
            per_client = self._client_phase_hists.setdefault(client_id, {})
            chist = per_client.get(phase)
            if chist is None:
                chist = per_client[phase] = Histogram(latency_bounds())
            chist.record(us)
        blocks = sum(event["reads"].values()) + sum(event["writes"].values())
        hist = self._io_hists.get(kind)
        if hist is None:
            hist = self._io_hists[kind] = Histogram(io_bounds())
        hist.record(blocks)

    def _admission_shed(self, start_v: float) -> bool:
        """True when the admission gate rejects a write arriving now."""
        if (self.max_inflight_writes is not None
                and len(self._waiting) >= self.max_inflight_writes):
            return True
        if (self.max_queue_delay_us is not None and self._waiting
                and start_v - self._waiting[0].end_v > self.max_queue_delay_us):
            return True
        return False

    def _dispatch(self, session: Session) -> None:
        """Execute the session's next op and settle its virtual interval."""
        g = self._dispatch_count
        if self.fault_injector is not None:
            self.fault_injector.maybe_crash(g)
        self._dispatch_count = g + 1
        session.dispatch_indices.append(g)
        kind, key = session.next_op()
        start_v = session.clock_us
        if (kind == "insert" and self.wal is not None
                and self._admission_shed(start_v)):
            # Rejected before the WAL append or any device work: nothing
            # is charged and the client's clock does not move — the
            # rejection itself is free, only the op is lost.
            session.shed_ops += 1
            if self.tracer is not None:
                self.tracer.shed_op()
            if session.remaining:
                heapq.heappush(self._heap, (session.clock_us, session.client_id))
            return
        snapshot = self.snapshot_reads and kind in ("lookup", "scan")
        before_us = self.device.stats.elapsed_us
        shed = False
        while True:
            self._cur_reads.clear()
            self._cur_writes.clear()
            if self.tracer is not None:
                self.tracer.begin_op(kind, key, g)
            seqno = None
            try:
                try:
                    if kind == "lookup":
                        result = self.index.lookup(key)
                        if snapshot and key in self._pending_keys:
                            # The insert is appended but not durable:
                            # invisible at the snapshot LSN.
                            result = None
                            session.snapshot_suppressed += 1
                        if (self.validate and result is not None
                                and result != key + 1):
                            raise AssertionError(
                                f"lookup({key}) returned {result}, "
                                f"expected {key + 1}")
                    elif kind == "insert":
                        if self.wal is not None:
                            seqno = self.wal.append("insert", key, key + 1)
                        self.index.insert(key, key + 1)
                    elif kind == "scan":
                        pairs = self.index.scan(key, self.scan_length)
                        if snapshot and self._pending_keys:
                            pairs = [p for p in pairs
                                     if p[0] not in self._pending_keys]
                    else:
                        raise ValueError(f"unknown operation kind {kind!r}")
                except StorageFault:
                    # A fault the tier could not absorb (hedging and
                    # failover both exhausted, or an unreplicated
                    # index).  Re-execute within the client's budget —
                    # the failed attempt's device time stays charged —
                    # or shed the op cleanly once the budget is spent.
                    if session.retries_used < self.retry_budget:
                        session.retries_used += 1
                        self._op_retries += 1
                        continue
                    shed = True
                else:
                    delta_us = self.device.stats.elapsed_us - before_us
                    # Latch accounting happens inside the span so the
                    # stall shows up in the op's trace event under the
                    # "latch" phase.
                    if snapshot:
                        session.snapshot_reads += 1
                        begin_v = start_v
                    elif self.latching:
                        reads = frozenset(self._cur_reads)
                        writes = frozenset(self._cur_writes)
                        begin_v = self.latches.wait_until(
                            session.client_id, start_v, reads, writes)
                        wait_us = begin_v - start_v
                        if wait_us > 0:
                            self.device.charge_latch_wait(wait_us)
                            if self.tracer is not None:
                                self.tracer.latch_wait(wait_us)
                            self.latches.record_wait(wait_us)
                            session.latch_waits += 1
                            session.latch_wait_us += wait_us
                            if kind == "insert":
                                self._write_latch_wait_us += wait_us
                            else:
                                self._read_latch_wait_us += wait_us
                        self.latches.hold(session.client_id, begin_v + delta_us,
                                          reads, writes)
                        self.latches.prune(start_v)
                    else:
                        begin_v = start_v
            finally:
                if self.tracer is not None:
                    event = self.tracer.end_op()
                    self._record_event(event, kind, session.client_id)
            break
        if shed:
            # Budget exhausted: the op is consumed and counted, the
            # charged device time of its failed attempts advances the
            # client's clock, and nothing is acknowledged.
            session.clock_us = start_v + (self.device.stats.elapsed_us
                                          - before_us)
            session.shed_ops += 1
            if self.tracer is not None:
                self.tracer.shed_op()
            if session.remaining:
                heapq.heappush(self._heap, (session.clock_us, session.client_id))
            return
        end_v = begin_v + delta_us
        if kind == "insert" and self.wal is not None:
            # Synchronous commit: block until the group flush makes the
            # record durable.  The session leaves the heap; the flush
            # acknowledges it and puts it back.
            self._waiting.append(_WaitingCommit(
                session, seqno, key, key + 1, start_v, end_v, g))
            self._pending_keys[key] = seqno
            return
        if kind == "insert":
            # No WAL: nothing to await; the write "commits" on apply.
            session.committed_writes += 1
            self._committed.append((0, key, key + 1))
        latency = end_v - start_v
        if self.deadline_us is not None and latency > self.deadline_us:
            session.deadline_misses += 1
        session.latencies_us.append(latency)
        session.op_kinds.append(kind)
        session.clock_us = end_v
        self._completed.append((g, kind, latency))
        if session.remaining:
            heapq.heappush(self._heap, (session.clock_us, session.client_id))

    # -- run -----------------------------------------------------------------

    def run(self) -> ServeReport:
        """Drain every session's queue; return the report.

        On a clean finish the WAL tail is flushed (acknowledging the last
        group) and the pager's dirty pages are written — the same two
        phase-boundary flushes the single-client runner performs.  On an
        injected crash the run stops at that dispatch, the crash's
        storage effects are applied, and blocked writers stay
        unacknowledged.
        """
        self._heap: List[Tuple[float, int]] = []
        self._read_latch_wait_us = 0.0
        self._write_latch_wait_us = 0.0
        for session in self.sessions:
            if session.remaining:
                heapq.heappush(self._heap, (session.clock_us, session.client_id))
        saved_group = None
        if self.wal is not None:
            # The engine owns the flush schedule: disable the WAL's own
            # count-based trigger for the duration.
            saved_group = self.wal.group_commit
            self.wal.group_commit = 2 ** 62
        saved_hook = self.pager.on_block_access
        self.pager.on_block_access = self._note_access
        crashed_at: Optional[int] = None
        try:
            while self._heap or self._waiting:
                if not self._heap:
                    # Every live session is blocked on the group: flush.
                    self._flush_group()
                    continue
                next_start_v, client_id = self._heap[0]
                if self._should_flush(next_start_v):
                    self._flush_group(trigger_v=next_start_v)
                    continue
                heapq.heappop(self._heap)
                self._dispatch(self.sessions[client_id])
        except CrashError as crash:
            crashed_at = crash.op_index
            self.fault_injector.crash(self.wal, crash.op_index, pager=self.pager)
        finally:
            self.pager.on_block_access = saved_hook
            if self.wal is not None and saved_group is not None:
                self.wal.group_commit = saved_group
        if crashed_at is None:
            if self.wal is not None:
                self.wal.flush()
            self.pager.flush()
        return self._report(crashed_at)

    def _report(self, crashed_at: Optional[int]) -> ServeReport:
        self._completed.sort()
        latencies = np.array([us for _, _, us in self._completed],
                             dtype=np.float64)
        kinds = [kind for _, kind, _ in self._completed]
        traced = self.tracer is not None
        return ServeReport(
            sessions=self.sessions,
            executed=len(self._completed),
            latencies_us=latencies,
            op_kinds=kinds,
            committed=list(self._committed),
            commit_groups=list(self._commit_groups),
            commit_waits=sum(s.commit_waits for s in self.sessions),
            commit_wait_us=sum(s.commit_wait_us for s in self.sessions),
            latch_waits=self.latches.waits,
            latch_wait_us=self.latches.wait_us,
            read_latch_wait_us=self._read_latch_wait_us,
            write_latch_wait_us=self._write_latch_wait_us,
            snapshot_reads=sum(s.snapshot_reads for s in self.sessions),
            snapshot_suppressed=sum(s.snapshot_suppressed for s in self.sessions),
            shed_ops=sum(s.shed_ops for s in self.sessions),
            deadline_misses=sum(s.deadline_misses for s in self.sessions),
            op_retries=self._op_retries,
            crashed_at_op=crashed_at,
            phase_hists=self._phase_hists if traced else None,
            io_hists=self._io_hists if traced else None,
            client_phase_hists=self._client_phase_hists if traced else None,
        )
