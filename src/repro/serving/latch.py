"""Frame-grain latching on the virtual timeline.

The engine executes ops serially under the simulated clock, but models
their *overlap* on a virtual timeline: each op occupies the interval
``[start, start + device_time]`` of its session's virtual clock, and
while it does, the frames it read are held in shared mode and the frames
it wrote in exclusive mode.  A later-dispatched op whose interval would
overlap a conflicting hold must wait until the hold's release — the
classic latch-crabbing cost, charged as simulated time the same way the
device charges positioning.

Conflict rules are the standard ones:

* shared (read) vs shared — compatible, no wait;
* anything vs another session's exclusive hold — wait until release;
* exclusive (write) vs another session's shared hold — wait until the
  last reader releases.

A session never conflicts with its own holds (latches are per-op here,
and one session runs one op at a time).

Because the scheduler dispatches in nondecreasing virtual start order
(it always picks the minimum virtual clock), any hold released at or
before the current start time can never conflict again, so the table is
pruned against that watermark.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = ["LatchManager"]

#: (file name, block number) — the latch grain is the buffer-pool frame.
FrameKey = Tuple[str, int]

#: Table size that triggers a full prune against the watermark.
_PRUNE_THRESHOLD = 4096


class LatchManager:
    """Latch table mapping frames to their current virtual-time holds."""

    def __init__(self) -> None:
        #: frame -> (holder session id, release virtual time)
        self._exclusive: Dict[FrameKey, Tuple[int, float]] = {}
        #: frame -> {holder session id: release virtual time}
        self._shared: Dict[FrameKey, Dict[int, float]] = {}
        self.waits = 0
        self.wait_us = 0.0

    def __len__(self) -> int:
        return len(self._exclusive) + len(self._shared)

    def wait_until(self, session_id: int, start_us: float,
                   reads: Iterable[FrameKey],
                   writes: Iterable[FrameKey]) -> float:
        """Earliest virtual time the op may begin given current holds.

        Returns ``start_us`` itself when nothing conflicts; otherwise the
        latest conflicting release time.  Does not record the wait —
        callers charge it and then :meth:`hold` the op's own latches.
        """
        begin = start_us
        for key in reads:
            held = self._exclusive.get(key)
            if held is not None and held[0] != session_id and held[1] > begin:
                begin = held[1]
        for key in writes:
            held = self._exclusive.get(key)
            if held is not None and held[0] != session_id and held[1] > begin:
                begin = held[1]
            for holder, release in self._shared.get(key, {}).items():
                if holder != session_id and release > begin:
                    begin = release
        return begin

    def hold(self, session_id: int, release_us: float,
             reads: Iterable[FrameKey], writes: Iterable[FrameKey]) -> None:
        """Record the op's holds: shared on reads, exclusive on writes.

        A frame both read and written is held exclusively (the write
        subsumes the read).  A newer hold on a frame supersedes this
        manager's older record for it — the older hold necessarily
        released before the new op began, or :meth:`wait_until` would
        have pushed the new op past it.
        """
        writes = set(writes)
        for key in writes:
            self._exclusive[key] = (session_id, release_us)
            self._shared.pop(key, None)
        for key in reads:
            if key in writes:
                continue
            held = self._exclusive.get(key)
            if held is not None and held[1] <= release_us:
                # The exclusive hold ended before this shared one will;
                # the shared record is now the binding one.
                del self._exclusive[key]
            self._shared.setdefault(key, {})[session_id] = release_us

    def record_wait(self, wait_us: float) -> None:
        """Count one stall (the engine charges the device separately)."""
        self.waits += 1
        self.wait_us += wait_us

    def prune(self, watermark_us: float, force: bool = False) -> None:
        """Drop holds released at or before ``watermark_us``.

        The scheduler's dispatch start times never decrease, so expired
        holds can never conflict again.  Cheap no-op until the table
        grows past a threshold (or ``force``).
        """
        if not force and len(self) < _PRUNE_THRESHOLD:
            return
        self._exclusive = {
            key: held for key, held in self._exclusive.items()
            if held[1] > watermark_us
        }
        shared: Dict[FrameKey, Dict[int, float]] = {}
        for key, holders in self._shared.items():
            live = {holder: release for holder, release in holders.items()
                    if release > watermark_us}
            if live:
                shared[key] = live
        self._shared = shared
