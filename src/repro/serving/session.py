"""Per-client sessions.

A :class:`Session` owns one client's operation queue and accumulates that
client's view of the run: per-op latencies (as the *client* perceives
them — latch stalls and group-commit waits included), contention
counters, and the dispatch-gap record the starvation tests assert on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads.spec import Operation

__all__ = ["Session"]


class Session:
    """One client's op stream and its per-client accounting.

    Args:
        client_id: small integer identifying the client (also the
            round-robin tie-break order in the scheduler).
        ops: the client's operation stream, executed in order.

    The session's *virtual clock* (``clock_us``) is the simulated time at
    which its next operation may start: each completed op advances it by
    the op's device time plus any latch stall, and an acknowledged write
    advances it to the group commit's completion.  The scheduler always
    dispatches the session with the smallest virtual clock, which is what
    makes the schedule fair.
    """

    def __init__(self, client_id: int, ops: Sequence[Operation]) -> None:
        self.client_id = client_id
        self.ops: List[Operation] = list(ops)
        #: next op to dispatch (index into ``ops``).
        self.cursor = 0
        #: virtual time at which the next op may start.
        self.clock_us = 0.0
        #: client-perceived latency of each *completed* op, in op order.
        self.latencies_us: List[float] = []
        #: kind ("lookup"/"insert"/"scan") of each completed op.
        self.op_kinds: List[str] = []
        self.latch_waits = 0
        self.latch_wait_us = 0.0
        self.commit_waits = 0
        self.commit_wait_us = 0.0
        #: reads served at snapshot isolation (never touched a latch).
        self.snapshot_reads = 0
        #: snapshot reads that suppressed a not-yet-durable key.
        self.snapshot_suppressed = 0
        self.committed_writes = 0
        #: ops rejected at admission or dropped after the retry budget
        #: ran out — consumed from the queue but never completed.
        self.shed_ops = 0
        #: completed ops whose client-perceived latency exceeded the
        #: engine's per-op deadline (the op still completed).
        self.deadline_misses = 0
        #: storage-fault re-executions drawn from this client's budget.
        self.retries_used = 0
        #: global dispatch index of each of this session's dispatches —
        #: the starvation test bounds the largest gap between them.
        self.dispatch_indices: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session({self.client_id}, {self.completed}/{len(self.ops)}"
                f" ops, clock={self.clock_us:.0f}us)")

    @property
    def remaining(self) -> int:
        return len(self.ops) - self.cursor

    @property
    def completed(self) -> int:
        return len(self.latencies_us)

    def next_op(self) -> Operation:
        """Pop the next operation off the queue."""
        op = self.ops[self.cursor]
        self.cursor += 1
        return op

    def max_dispatch_gap(self) -> Optional[int]:
        """Largest gap between this session's consecutive dispatches.

        A fair scheduler bounds this by a small multiple of the client
        count; a starved session shows an unbounded gap.  None when the
        session was dispatched fewer than twice.
        """
        if len(self.dispatch_indices) < 2:
            return None
        return max(b - a for a, b in zip(self.dispatch_indices,
                                         self.dispatch_indices[1:]))
