"""Byte-addressed access path on top of the block device.

Indexes address their data as ``(file, byte offset)``; the pager maps
offsets to blocks and fetches exactly the covering blocks.  This is what
makes the paper's shortcoming **S1** (the learned model living in a
different block than the predicted slot) emerge naturally: a node header
at offset 0 and a slot 6000 bytes later really are two block fetches.

The pager layers three caches in front of the device:

1. *memory-resident files* — Section 6.2's "inner nodes in RAM" case;
   served free, not counted.
2. the *last fetched block* — the paper's default configuration keeps no
   buffer pool but "checks whether the last block fetched can be reused"
   (Section 6.5).
3. an optional LRU :class:`~repro.storage.buffer_pool.BufferPool`
   (Section 6.6).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Optional, Tuple

from .buffer_pool import BufferPool
from .device import BlockDevice, BlockFile

__all__ = ["Pager"]


class Pager:
    """Read/write path with last-block reuse and optional buffer pool.

    Args:
        device: the simulated disk.
        buffer_pool: optional LRU cache; None reproduces the paper's
            default no-buffer-management setting.
        reuse_last_block: keep a one-block cache of the most recently
            fetched block (the paper's Section 6.5 behaviour).
    """

    def __init__(
        self,
        device: BlockDevice,
        buffer_pool: Optional[BufferPool] = None,
        reuse_last_block: bool = True,
    ) -> None:
        self.device = device
        self.buffer_pool = buffer_pool
        self.reuse_last_block = reuse_last_block
        self._last: Optional[Tuple[str, int, bytes]] = None
        #: batch pin cache: while inside :meth:`batch`, every block that
        #: crosses the pager is pinned here so repeated accesses within
        #: the batch (shared inner-node descents) are free.
        self._batch_depth = 0
        self._batch_cache: Dict[Tuple[str, int], bytes] = {}
        #: optional :class:`repro.obs.Tracer`, set by ``Tracer.bind``;
        #: only consulted on last-block reuse hits (the one cache level
        #: the device and buffer pool cannot see).
        self.tracer = None

    @property
    def block_size(self) -> int:
        return self.device.block_size

    @property
    def stats(self):
        return self.device.stats

    # -- phase attribution -------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all I/O inside the block to ``name`` (see Figure 6)."""
        previous = self.device.set_phase(name)
        try:
            yield
        finally:
            self.device.set_phase(previous)

    # -- block-level API -----------------------------------------------------

    def read_block(self, file: BlockFile, block_no: int) -> bytes:
        """Read one block through the cache hierarchy."""
        if file.memory_resident:
            return self.device.read_block(file, block_no)
        if self._batch_depth:
            pinned = self._batch_cache.get((file.name, block_no))
            if pinned is not None:
                if self.tracer is not None:
                    self.tracer.reuse_hit()
                return pinned
        if self.reuse_last_block and self._last is not None:
            name, no, data = self._last
            if name == file.name and no == block_no:
                if self.tracer is not None:
                    self.tracer.reuse_hit()
                return data
        if self.buffer_pool is not None:
            cached = self.buffer_pool.get(file.name, block_no)
            if cached is not None:
                if self.reuse_last_block:
                    self._last = (file.name, block_no, cached)
                if self._batch_depth:
                    self._batch_cache[(file.name, block_no)] = cached
                return cached
        data = self.device.read_block(file, block_no)
        if self.buffer_pool is not None:
            self.buffer_pool.put(file.name, block_no, data)
        if self.reuse_last_block:
            self._last = (file.name, block_no, data)
        if self._batch_depth:
            self._batch_cache[(file.name, block_no)] = data
        return data

    def write_block(self, file: BlockFile, block_no: int, data: bytes) -> None:
        """Write one block through to the device, refreshing caches."""
        self.device.write_block(file, block_no, data)
        if file.memory_resident:
            return
        if self.buffer_pool is not None:
            self.buffer_pool.put(file.name, block_no, bytes(data))
        if self.reuse_last_block:
            self._last = (file.name, block_no, bytes(data))
        if self._batch_depth:
            self._batch_cache[(file.name, block_no)] = bytes(data)

    # -- batched API ---------------------------------------------------------

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Pin every block touched until exit (re-entrant).

        Inside the context, any block that crosses the pager stays
        addressable for free, so a batch of lookups shares one fetch of
        each inner node instead of re-reading it per key.  Writes refresh
        the pinned copy, keeping results byte-identical to unbatched
        execution.  The pin cache is dropped when the outermost batch
        exits.
        """
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._batch_cache.clear()

    def read_span(self, file: BlockFile, block_nos: Iterable[int]) -> Dict[int, bytes]:
        """Read a set of blocks, coalescing cache misses into runs.

        Sorts and dedups ``block_nos``, serves what it can from the
        last-block cache and buffer pool, fetches the misses in one
        vectorized :meth:`BlockDevice.read_blocks` call (contiguous
        misses are charged one positioning cost per run), back-fills the
        pool, and returns ``{block_no: data}``.
        """
        wanted = sorted(set(block_nos))
        if not wanted:
            return {}
        if file.memory_resident:
            return {no: self.device.read_block(file, no) for no in wanted}
        out: Dict[int, bytes] = {}
        misses = []
        for block_no in wanted:
            if self._batch_depth:
                pinned = self._batch_cache.get((file.name, block_no))
                if pinned is not None:
                    if self.tracer is not None:
                        self.tracer.reuse_hit()
                    out[block_no] = pinned
                    continue
            # The one-block reuse cache can only serve the lowest block of
            # the span: a serial ascending loop overwrites ``_last`` before
            # reaching any later block, and the span must charge exactly
            # what that loop would (cost-model parity, Section 6.5).
            if (self.reuse_last_block and self._last is not None
                    and block_no == wanted[0]):
                name, no, data = self._last
                if name == file.name and no == block_no:
                    if self.tracer is not None:
                        self.tracer.reuse_hit()
                    out[block_no] = data
                    continue
            misses.append(block_no)
        if misses and self.buffer_pool is not None:
            hits = self.buffer_pool.get_many(file.name, misses)
            if hits:
                out.update(hits)
                misses = [no for no in misses if no not in hits]
        if misses:
            payloads = self.device.read_blocks(file, misses)
            fetched = dict(zip(misses, payloads))
            out.update(fetched)
            if self.buffer_pool is not None:
                self.buffer_pool.put_many(file.name, fetched)
            if self.reuse_last_block:
                top = misses[-1]
                self._last = (file.name, top, fetched[top])
        if self._batch_depth:
            for block_no, data in out.items():
                self._batch_cache[(file.name, block_no)] = data
        return out

    def prefetch(self, file: BlockFile, block_nos: Iterable[int]) -> int:
        """Warm the caches with ``block_nos``; returns blocks fetched from disk."""
        before = self.device.stats.reads
        self.read_span(file, block_nos)
        return self.device.stats.reads - before

    # -- byte-level API ------------------------------------------------------

    def read_bytes(self, file: BlockFile, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``, fetching covering blocks.

        Multi-block ranges go through :meth:`read_span`, so a range that
        misses every cache is charged one positioning plus sequential
        transfers rather than a seek per block.
        """
        if length < 0 or offset < 0:
            raise ValueError(f"invalid byte range offset={offset} length={length}")
        if length == 0:
            return b""
        bs = self.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        if last == first:
            blob = self.read_block(file, first)
        else:
            span = self.read_span(file, range(first, last + 1))
            blob = b"".join(span[no] for no in range(first, last + 1))
        start = offset - first * bs
        return blob[start : start + length]

    def write_bytes(self, file: BlockFile, offset: int, data: bytes) -> None:
        """Write bytes at ``offset``; partially covered blocks are read-modified."""
        if offset < 0:
            raise ValueError(f"invalid byte offset {offset}")
        if not data:
            return
        bs = self.block_size
        remaining = memoryview(bytes(data))
        pos = offset
        while remaining:
            block_no = pos // bs
            in_block = pos - block_no * bs
            take = min(bs - in_block, len(remaining))
            if take == bs:
                self.write_block(file, block_no, bytes(remaining[:take]))
            else:
                current = bytearray(self.read_block(file, block_no))
                current[in_block : in_block + take] = remaining[:take]
                self.write_block(file, block_no, bytes(current))
            remaining = remaining[take:]
            pos += take

    # -- cache hygiene ---------------------------------------------------------

    def invalidate_file(self, file_name: str) -> None:
        """Drop cached blocks of a file (call before/after deleting it)."""
        if self._last is not None and self._last[0] == file_name:
            self._last = None
        if self._batch_cache:
            for key in [k for k in self._batch_cache if k[0] == file_name]:
                del self._batch_cache[key]
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate_file(file_name)

    def drop_last_block(self) -> None:
        """Forget the one-block reuse cache (e.g. between measured queries)."""
        self._last = None
