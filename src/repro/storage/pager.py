"""Byte-addressed access path on top of the block device.

Indexes address their data as ``(file, byte offset)``; the pager maps
offsets to blocks and fetches exactly the covering blocks.  This is what
makes the paper's shortcoming **S1** (the learned model living in a
different block than the predicted slot) emerge naturally: a node header
at offset 0 and a slot 6000 bytes later really are two block fetches.

The pager layers three caches in front of the device:

1. *memory-resident files* — Section 6.2's "inner nodes in RAM" case;
   served free, not counted.
2. the *last fetched block* — the paper's default configuration keeps no
   buffer pool but "checks whether the last block fetched can be reused"
   (Section 6.5).
3. an optional LRU :class:`~repro.storage.buffer_pool.BufferPool`
   (Section 6.6).

With ``write_back=True`` the buffer pool additionally absorbs writes:
:meth:`Pager.write_block` marks the frame dirty instead of writing
through, and dirty pages reach the device only at a dirty eviction, an
explicit :meth:`Pager.flush`, or a checkpoint — always via the device's
coalescing :meth:`~repro.storage.device.BlockDevice.write_blocks`, so a
flush charges one positioning per contiguous dirty run instead of one
per block.  Durability is preserved by a log-before-data barrier: when a
:class:`~repro.durability.WriteAheadLog` is attached (see
:meth:`set_wal`), no dirty page reaches disk before the WAL records
covering it are durable.

The pager is also where storage faults are absorbed: transient device
read errors are retried with exponential backoff (charged as simulated
latency under the current phase), :meth:`scrub` walks allocated blocks
verifying their checksum envelopes, and :meth:`quarantine` pins a
known-good copy of a suspect block in the buffer pool so it cannot be
evicted while the device copy awaits repair.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .buffer_pool import BufferPool
from .device import BlockDevice, BlockFile
from .integrity import (ChecksumError, PersistentIOError, ScrubReport,
                        TransientIOError)

__all__ = ["Pager"]


class Pager:
    """Read/write path with last-block reuse and optional buffer pool.

    Args:
        device: the simulated disk.
        buffer_pool: optional LRU cache; None reproduces the paper's
            default no-buffer-management setting.
        reuse_last_block: keep a one-block cache of the most recently
            fetched block (the paper's Section 6.5 behaviour).
        write_back: buffer writes in the pool as dirty frames and flush
            them in coalesced runs instead of writing through.  Requires
            a buffer pool with non-zero capacity (the dirty pages live in
            its frames).
        flush_watermark: with ``write_back``, flush all dirty pages as
            soon as their count reaches this value (None = flush only on
            eviction / explicit :meth:`flush` / checkpoint).
        max_read_retries: how many times a transient device read error
            is retried (with exponential backoff charged as simulated
            latency) before it escalates to ``PersistentIOError``.
    """

    def __init__(
        self,
        device: BlockDevice,
        buffer_pool: Optional[BufferPool] = None,
        reuse_last_block: bool = True,
        write_back: bool = False,
        flush_watermark: Optional[int] = None,
        max_read_retries: int = 4,
    ) -> None:
        if write_back and (buffer_pool is None or buffer_pool.capacity == 0):
            raise ValueError(
                "write_back requires a buffer pool with non-zero capacity "
                "(dirty pages live in its frames)")
        if flush_watermark is not None and flush_watermark < 1:
            raise ValueError(
                f"flush_watermark must be >= 1, got {flush_watermark}")
        if max_read_retries < 0:
            raise ValueError(
                f"max_read_retries must be non-negative, got {max_read_retries}")
        self.device = device
        self.buffer_pool = buffer_pool
        self.reuse_last_block = reuse_last_block
        self.write_back = write_back
        self.flush_watermark = flush_watermark if write_back else None
        self.max_read_retries = max_read_retries
        #: blocks whose device copy is suspect and whose good copy is
        #: pinned in the buffer pool, as (file_name, block_no)
        self._quarantined: Set[Tuple[str, int]] = set()
        self._last: Optional[Tuple[str, int, bytes]] = None
        #: batch pin cache: while inside :meth:`batch`, every block that
        #: crosses the pager is pinned here so repeated accesses within
        #: the batch (shared inner-node descents) are free.
        self._batch_depth = 0
        self._batch_cache: Dict[Tuple[str, int], bytes] = {}
        #: optional :class:`repro.obs.Tracer`, set by ``Tracer.bind``;
        #: consulted on last-block reuse hits (the one cache level the
        #: device and buffer pool cannot see) and on flush events.
        self.tracer = None
        #: optional hook ``(kind, file_name, block_no)`` with kind
        #: "r"/"w", fired for *every* block that crosses the pager —
        #: cache hits included, unlike the device's ``on_access`` —
        #: because a latch protects the frame regardless of where its
        #: bytes are served from.  Set by the serving engine
        #: (:mod:`repro.serving`) to collect each operation's frame
        #: footprint; None keeps the hot path to one attribute check.
        self.on_block_access = None
        #: optional :class:`repro.durability.WriteAheadLog` whose durable
        #: high-water mark gates dirty-page flushes (log before data).
        self._wal = None
        #: per-dirty-page covering LSN: the highest WAL seqno appended
        #: before the page was last written.  The page may only reach
        #: disk once ``wal.durable_seqno`` has caught up with it.
        self._dirty_lsn: Dict[Tuple[str, int], int] = {}
        self.flushes = 0          # explicit/watermark flush calls that wrote
        self.flushed_blocks = 0   # dirty blocks written by those flushes
        #: per-frame parsed key arrays (DESIGN.md §15): ``(file, block)``
        #: -> ``(bytes_ref, count, offset, stride, np.ndarray)``.  Entries
        #: are validated by *object identity* against the block bytes the
        #: caller just read through the pager, so a write (which always
        #: produces a new bytes object) can never be served a stale
        #: array; the explicit invalidation below and the pool's
        #: ``on_drop`` hook are memory hygiene on top of that guarantee.
        self._key_cache: "OrderedDict[Tuple[str, int], tuple]" = OrderedDict()
        self.key_cache_capacity = 1024
        self.key_cache_hits = 0
        self.key_cache_builds = 0
        #: per-frame parsed metadata (same identity-validation contract as
        #: ``_key_cache``): ``(file, block)`` -> ``(bytes_ref, value)``.
        self._meta_cache: "OrderedDict[Tuple[str, int], tuple]" = OrderedDict()
        self.meta_cache_capacity = 4096
        if write_back:
            buffer_pool.on_evict = self._flush_evicted_frame
        if buffer_pool is not None:
            buffer_pool.on_drop = self._drop_cached_keys

    @property
    def block_size(self) -> int:
        return self.device.block_size

    @property
    def stats(self):
        return self.device.stats

    # -- phase attribution -------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all I/O inside the block to ``name`` (see Figure 6)."""
        previous = self.device.set_phase(name)
        try:
            yield
        finally:
            self.device.set_phase(previous)

    # -- fault absorption ----------------------------------------------------

    def _retrying(self, read):
        """Run a device read, absorbing transient errors with backoff.

        Each retry charges an exponentially growing backoff (base: the
        profile's random-read positioning cost — the natural "reissue the
        request" unit) as simulated latency under the current phase and
        counts into ``stats.io_retries``.  A stalled request
        (``MemberStallError``) additionally charges the hang itself —
        the time the request sat in the device queue before timing out —
        so a stalling member is slow in virtual time, which is exactly
        the signal the sharding tier's hedged reads key off.  After
        ``max_read_retries`` failed retries the error escalates to
        ``PersistentIOError`` for the quarantine/repair machinery.
        ``ChecksumError`` is never retried: the damage is on the medium
        and deterministic.
        """
        retries = 0
        while True:
            try:
                return read()
            except TransientIOError as fault:
                if retries >= self.max_read_retries:
                    raise PersistentIOError(
                        fault.file_name, fault.block_no,
                        f"transient error persisted through {retries} retries",
                    ) from fault
                retries += 1
                backoff = getattr(fault, "stall_us", 0.0)
                backoff += (self.device.profile.read_positioning_us
                           * (2 ** (retries - 1)))
                self.device.stats.io_retries += 1
                self.device.charge_latency(backoff)
                if self.tracer is not None:
                    self.tracer.io_retry(self.device.phase, backoff)

    def _device_read_block(self, file: BlockFile, block_no: int) -> bytes:
        if self.device.fault_model is None:
            # Transient faults only come from an injected fault model;
            # without one the retry trampoline (and its per-read
            # closure) is dead weight on the hot path.
            return self.device.read_block(file, block_no)
        return self._retrying(lambda: self.device.read_block(file, block_no))

    def _device_read_blocks(self, file: BlockFile, block_nos: List[int]) -> List[bytes]:
        # A transient error mid-span reissues the whole vectorized read;
        # already-transferred blocks are re-charged, as a reissued DMA
        # request would be.
        if self.device.fault_model is None:
            return self.device.read_blocks(file, block_nos)
        return self._retrying(lambda: self.device.read_blocks(file, block_nos))

    # -- block-level API -----------------------------------------------------

    def read_block(self, file: BlockFile, block_no: int) -> bytes:
        """Read one block through the cache hierarchy."""
        if self.on_block_access is not None:
            self.on_block_access("r", file.name, block_no)
        if file.memory_resident:
            # A write-back pager's dirty frames are the authoritative
            # copy — the device bytes are stale until the next flush —
            # so free reads must still see them (recency-neutral peek).
            if self.write_back:
                dirty = self.buffer_pool.peek_dirty(file.name, block_no)
                if dirty is not None:
                    return dirty
            return self.device.read_block(file, block_no)
        if self._batch_depth:
            pinned = self._batch_cache.get((file.name, block_no))
            if pinned is not None:
                if self.tracer is not None:
                    self.tracer.reuse_hit()
                return pinned
        if self.reuse_last_block and self._last is not None:
            name, no, data = self._last
            if name == file.name and no == block_no:
                if self.tracer is not None:
                    self.tracer.reuse_hit()
                if self._batch_depth:
                    # "Pin every block touched until exit" includes blocks
                    # served by the last-block cache: without the pin, the
                    # block would be re-charged later in the batch once
                    # another read evicts it from the one-entry cache.
                    self._batch_cache[(file.name, block_no)] = data
                return data
        if self.buffer_pool is not None:
            cached = self.buffer_pool.get(file.name, block_no)
            if cached is not None:
                if self.reuse_last_block:
                    self._last = (file.name, block_no, cached)
                if self._batch_depth:
                    self._batch_cache[(file.name, block_no)] = cached
                return cached
        data = self._device_read_block(file, block_no)
        if self.buffer_pool is not None:
            self.buffer_pool.put(file.name, block_no, data)
        if self.reuse_last_block:
            self._last = (file.name, block_no, data)
        if self._batch_depth:
            self._batch_cache[(file.name, block_no)] = data
        return data

    def write_block(self, file: BlockFile, block_no: int, data: bytes) -> None:
        """Write one block, refreshing caches.

        Write-through (default): the block goes straight to the device.
        Write-back: the payload is cached as a dirty frame and reaches
        the device later, in a coalesced flush run.
        """
        if self.on_block_access is not None:
            self.on_block_access("w", file.name, block_no)
        self._drop_cached_keys(file.name, block_no)
        if self.write_back and not file.memory_resident:
            self._buffer_write(file, block_no, data)
            return
        self.device.write_block(file, block_no, data)
        if file.memory_resident:
            return
        payload = bytes(data)
        if self.buffer_pool is not None:
            self.buffer_pool.put(file.name, block_no, payload)
        if self.reuse_last_block:
            self._last = (file.name, block_no, payload)
        if self._batch_depth:
            self._batch_cache[(file.name, block_no)] = payload

    def _buffer_write(self, file: BlockFile, block_no: int, data: bytes) -> None:
        """Absorb one write into the pool as a dirty frame (write-back)."""
        if not 0 <= block_no < file.num_blocks:
            raise ValueError(
                f"block {block_no} out of range for file {file.name!r} "
                f"({file.num_blocks} blocks)")
        if len(data) != self.block_size:
            raise ValueError(
                f"write must be exactly one block ({self.block_size} bytes), "
                f"got {len(data)}")
        payload = bytes(data)
        key = (file.name, block_no)
        pool = self.buffer_pool
        pool.put(file.name, block_no, payload)
        # ``put`` may have evicted this very frame's predecessor dirty copy
        # (flushing it); only mark dirty if the frame actually resides.
        pool.mark_dirty(file.name, block_no)
        self._dirty_lsn[key] = self._current_lsn()
        if self.reuse_last_block:
            self._last = (file.name, block_no, payload)
        if self._batch_depth:
            self._batch_cache[key] = payload
        if (self.flush_watermark is not None
                and pool.dirty_count >= self.flush_watermark):
            self.flush()

    def write_blocks(
        self,
        file: BlockFile,
        writes: Iterable[Tuple[int, bytes]],
        through: bool = False,
    ) -> None:
        """Write several blocks of one file, coalescing contiguous runs.

        In write-through mode (or with ``through=True``, which forces
        the device path even under write-back — e.g. a WAL flush that
        must be durable *now*), the sorted pairs go to the device in one
        :meth:`BlockDevice.write_blocks` call charging one positioning
        per contiguous run.  In write-back mode the pairs become dirty
        frames, exactly as per-block :meth:`write_block` calls would.
        """
        pairs = sorted(writes)
        if not pairs:
            return
        if self.on_block_access is not None:
            for block_no, _data in pairs:
                self.on_block_access("w", file.name, block_no)
        for block_no, _data in pairs:
            self._drop_cached_keys(file.name, block_no)
        if self.write_back and not through and not file.memory_resident:
            for block_no, data in pairs:
                self._buffer_write(file, block_no, data)
            return
        self.device.write_blocks(file, pairs)
        if file.memory_resident:
            return
        payloads = {no: bytes(data) for no, data in pairs}
        if self.buffer_pool is not None:
            if through and self.write_back:
                # A forced write-through supersedes any buffered dirty
                # copy of the same blocks: refresh and clean the frames.
                self.buffer_pool.put_many(file.name, payloads)
                keys = [(file.name, no) for no in payloads]
                self.buffer_pool.mark_clean(keys)
                for key in keys:
                    self._dirty_lsn.pop(key, None)
            else:
                self.buffer_pool.put_many(file.name, payloads)
        if self.reuse_last_block:
            top = pairs[-1][0]
            self._last = (file.name, top, payloads[top])
        if self._batch_depth:
            for no, payload in payloads.items():
                self._batch_cache[(file.name, no)] = payload

    # -- write-back flushing -------------------------------------------------

    def set_wal(self, wal) -> None:
        """Attach the write-ahead log whose durability gates page flushes.

        After this, no dirty page reaches the device before the WAL
        records covering it (appended up to the page's last write) are
        durable — the classic log-before-data rule.
        """
        self._wal = wal

    def _current_lsn(self) -> int:
        """Covering LSN for a write happening *now*.

        The index logs before it applies, so every record describing the
        current page contents has already been appended — the highest
        appended seqno covers the page.
        """
        if self._wal is None:
            return 0
        return self._wal.current_lsn

    def _ensure_wal_durable(self, lsn: int) -> None:
        """Force the WAL durable up to ``lsn`` before data hits disk."""
        if lsn and self._wal is not None and self._wal.durable_seqno < lsn:
            self._wal.flush()

    @property
    def dirty_blocks(self) -> int:
        """Number of dirty pages currently buffered (0 unless write-back)."""
        if self.buffer_pool is None:
            return 0
        return self.buffer_pool.dirty_count

    def flush(self, file_name: Optional[str] = None) -> int:
        """Write all dirty pages (optionally of one file) in coalesced runs.

        Called at workload phase boundaries, at checkpoints, and before
        handing a file's device image to anyone who will read it without
        this pager (e.g. :func:`~repro.storage.persist.save_device`).
        Charges I/O under the ``"flush"`` phase: one positioning per
        contiguous dirty run plus sequential transfers.  Returns the
        number of blocks written.
        """
        if self.buffer_pool is None:
            return 0
        dirty = self.buffer_pool.dirty_items(file_name)
        if not dirty:
            return 0
        self._ensure_wal_durable(
            max(self._dirty_lsn.get(key, 0) for key in dirty))
        by_file: Dict[str, List[Tuple[int, bytes]]] = {}
        for (fname, block_no), data in dirty.items():
            by_file.setdefault(fname, []).append((block_no, data))
        written = 0
        previous = self.device.set_phase("flush")
        try:
            for fname, pairs in sorted(by_file.items()):
                pairs.sort()
                self.device.write_blocks(self.device.get_file(fname), pairs)
                written += len(pairs)
        finally:
            self.device.set_phase(previous)
        self.buffer_pool.mark_clean(dirty.keys())
        for key in dirty:
            self._dirty_lsn.pop(key, None)
        self.flushes += 1
        self.flushed_blocks += written
        if self.tracer is not None:
            self.tracer.pager_flush(written)
        return written

    def _flush_evicted_frame(self, file_name: str, block_no: int,
                             data: bytes) -> None:
        """Write back one dirty frame the pool just evicted.

        Invoked by the pool *after* the frame left it, so the WAL flush
        forced by the log-before-data barrier (which may itself touch the
        pool) cannot recurse into this eviction.
        """
        key = (file_name, block_no)
        self._ensure_wal_durable(self._dirty_lsn.pop(key, 0))
        previous = self.device.set_phase("flush")
        try:
            self.device.write_blocks(self.device.get_file(file_name),
                                     [(block_no, data)])
        finally:
            self.device.set_phase(previous)
        if self.tracer is not None:
            self.tracer.dirty_eviction()

    def drop_dirty(self) -> int:
        """Discard every dirty page without writing it (simulated crash).

        The frames are *removed* from the pool — after a crash the only
        trustworthy copy is the device's, and recovery must re-read it.
        Returns the number of pages dropped.
        """
        if self.buffer_pool is None:
            return 0
        dirty = list(self.buffer_pool.dirty_items())
        for fname, block_no in dirty:
            self.buffer_pool.invalidate(fname, block_no)
            if (self._last is not None and self._last[0] == fname
                    and self._last[1] == block_no):
                self._last = None
            self._batch_cache.pop((fname, block_no), None)
            self._drop_cached_keys(fname, block_no)
        self._dirty_lsn.clear()
        return len(dirty)

    # -- batched API ---------------------------------------------------------

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Pin every block touched until exit (re-entrant).

        Inside the context, any block that crosses the pager stays
        addressable for free, so a batch of lookups shares one fetch of
        each inner node instead of re-reading it per key.  Writes refresh
        the pinned copy, keeping results byte-identical to unbatched
        execution.  The pin cache is dropped when the outermost batch
        exits.
        """
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._batch_cache.clear()
                # The last-block cache is a one-entry pin: inside a batch
                # its final value depends on which probe happened to miss
                # last, which the scalar and vectorized execution paths
                # order differently.  Dropping it with the pin cache makes
                # the post-batch charge state deterministic, so vectorized
                # lookups stay charge-identical even when mutations follow.
                self._last = None

    def read_span(self, file: BlockFile, block_nos: Iterable[int]) -> Dict[int, bytes]:
        """Read a set of blocks, coalescing cache misses into runs.

        Sorts and dedups ``block_nos``, serves what it can from the
        last-block cache and buffer pool, fetches the misses in one
        vectorized :meth:`BlockDevice.read_blocks` call (contiguous
        misses are charged one positioning cost per run), back-fills the
        pool, and returns ``{block_no: data}``.
        """
        wanted = sorted(set(block_nos))
        if not wanted:
            return {}
        if self.on_block_access is not None:
            for block_no in wanted:
                self.on_block_access("r", file.name, block_no)
        if file.memory_resident:
            if self.write_back:
                return {
                    no: (self.buffer_pool.peek_dirty(file.name, no)
                         or self.device.read_block(file, no))
                    for no in wanted
                }
            return {no: self.device.read_block(file, no) for no in wanted}
        out: Dict[int, bytes] = {}
        misses = []
        for block_no in wanted:
            if self._batch_depth:
                pinned = self._batch_cache.get((file.name, block_no))
                if pinned is not None:
                    if self.tracer is not None:
                        self.tracer.reuse_hit()
                    out[block_no] = pinned
                    continue
            # The one-block reuse cache can only serve the lowest block of
            # the span: a serial ascending loop overwrites ``_last`` before
            # reaching any later block, and the span must charge exactly
            # what that loop would (cost-model parity, Section 6.5).
            if (self.reuse_last_block and self._last is not None
                    and block_no == wanted[0]):
                name, no, data = self._last
                if name == file.name and no == block_no:
                    if self.tracer is not None:
                        self.tracer.reuse_hit()
                    out[block_no] = data
                    continue
            misses.append(block_no)
        if misses and self.buffer_pool is not None:
            hits = self.buffer_pool.get_many(file.name, misses)
            if hits:
                out.update(hits)
                misses = [no for no in misses if no not in hits]
        if misses:
            payloads = self._device_read_blocks(file, misses)
            fetched = dict(zip(misses, payloads))
            out.update(fetched)
            if self.buffer_pool is not None:
                self.buffer_pool.put_many(file.name, fetched)
            if self.reuse_last_block:
                top = misses[-1]
                self._last = (file.name, top, fetched[top])
        if self._batch_depth:
            for block_no, data in out.items():
                self._batch_cache[(file.name, block_no)] = data
        return out

    def prefetch(self, file: BlockFile, block_nos: Iterable[int]) -> int:
        """Warm the caches with ``block_nos``; returns blocks fetched from disk."""
        before = self.device.stats.reads
        self.read_span(file, block_nos)
        return self.device.stats.reads - before

    # -- byte-level API ------------------------------------------------------

    def read_bytes(self, file: BlockFile, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``, fetching covering blocks.

        Multi-block ranges go through :meth:`read_span`, so a range that
        misses every cache is charged one positioning plus sequential
        transfers rather than a seek per block.
        """
        if length < 0 or offset < 0:
            raise ValueError(f"invalid byte range offset={offset} length={length}")
        if length == 0:
            return b""
        bs = self.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        if last == first:
            blob = self.read_block(file, first)
        else:
            span = self.read_span(file, range(first, last + 1))
            blob = b"".join(span[no] for no in range(first, last + 1))
        start = offset - first * bs
        return blob[start : start + length]

    def write_bytes(self, file: BlockFile, offset: int, data: bytes) -> None:
        """Write bytes at ``offset``; partially covered blocks are read-modified."""
        if offset < 0:
            raise ValueError(f"invalid byte offset {offset}")
        if not data:
            return
        bs = self.block_size
        remaining = memoryview(bytes(data))
        pos = offset
        while remaining:
            block_no = pos // bs
            in_block = pos - block_no * bs
            take = min(bs - in_block, len(remaining))
            if take == bs:
                self.write_block(file, block_no, bytes(remaining[:take]))
            else:
                current = bytearray(self.read_block(file, block_no))
                current[in_block : in_block + take] = remaining[:take]
                self.write_block(file, block_no, bytes(current))
            remaining = remaining[take:]
            pos += take

    # -- per-frame key-array cache ---------------------------------------------

    def cached_keys(self, file: BlockFile, block_no: int, data,
                    count: int, offset: int = 0, stride: int = 16):
        """The frame's key column as a cached numpy uint64 array.

        ``data`` must be the block bytes the caller just obtained through
        this pager (so the charged I/O already happened); the cache only
        replaces the *parse*.  A hit requires the stored bytes object to
        be identical (``is``) to ``data`` with the same layout
        parameters: any write path produces a new bytes object, so a
        stale array is unreachable by construction — the eviction hooks
        (write paths, :meth:`invalidate_file`, the buffer pool's
        ``on_drop``) just bound memory.  Searched with
        ``np.searchsorted`` by the vectorized ``lookup_many`` paths.
        """
        cache_key = (file.name, block_no)
        entry = self._key_cache.get(cache_key)
        if (entry is not None and entry[0] is data and entry[1] == count
                and entry[2] == offset and entry[3] == stride):
            self._key_cache.move_to_end(cache_key)
            self.key_cache_hits += 1
            return entry[4]
        from ..core.serial import keys_view  # lazy: core imports storage
        arr = keys_view(data, count, offset, stride)
        self._key_cache[cache_key] = (data, count, offset, stride, arr)
        self._key_cache.move_to_end(cache_key)
        self.key_cache_builds += 1
        while len(self._key_cache) > self.key_cache_capacity:
            self._key_cache.popitem(last=False)
        return arr

    def cached_meta(self, file: BlockFile, block_no: int, data, build):
        """A cached ``build(data)`` result for one frame.

        Same contract as :meth:`cached_keys` — ``data`` must be block
        bytes just obtained through this pager, and a hit requires the
        stored bytes object to be *identical* to ``data``, so writes
        (which always produce a new bytes object) can never yield a
        stale value.  Used by the vectorized lookup paths to avoid
        re-parsing immutable node headers on every batch.
        """
        cache_key = (file.name, block_no)
        entry = self._meta_cache.get(cache_key)
        if entry is not None and entry[0] is data:
            return entry[1]
        value = build(data)
        self._meta_cache[cache_key] = (data, value)
        while len(self._meta_cache) > self.meta_cache_capacity:
            self._meta_cache.popitem(last=False)
        return value

    def cached_decode(self, file: BlockFile, block_no: int, data, codec,
                      offset: int = 0):
        """Frame-cached codec decode: ``(keys, payloads)`` uint64 arrays.

        The compressed-page counterpart of :meth:`cached_keys`
        (DESIGN.md Section 16): compressed columns cannot be aliased
        zero-copy like a raw key column, so the decoded arrays are
        memoized per frame under the same identity contract — a hit
        requires the stored bytes object to be *identical* (``is``) to
        ``data``, and every write path produces a new bytes object, so
        the same eviction hooks that bound :meth:`cached_keys` memory
        make a stale decode unreachable by construction.  Decoding is
        pure CPU over bytes already charged by the caller's read, so
        cache hits never change ``StorageStats``.
        """
        return self.cached_meta(file, block_no, data,
                                lambda raw: codec.decode_arrays(raw, offset))

    def _drop_cached_keys(self, file_name: str, block_no: int) -> None:
        self._key_cache.pop((file_name, block_no), None)
        self._meta_cache.pop((file_name, block_no), None)

    # -- cache hygiene ---------------------------------------------------------

    def invalidate_file(self, file_name: str) -> None:
        """Drop cached blocks of a file (call before/after deleting it)."""
        if self._last is not None and self._last[0] == file_name:
            self._last = None
        if self._batch_cache:
            for key in [k for k in self._batch_cache if k[0] == file_name]:
                del self._batch_cache[key]
        if self._key_cache:
            for key in [k for k in self._key_cache if k[0] == file_name]:
                del self._key_cache[key]
        if self._meta_cache:
            for key in [k for k in self._meta_cache if k[0] == file_name]:
                del self._meta_cache[key]
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate_file(file_name)

    def drop_last_block(self) -> None:
        """Forget the one-block reuse cache (e.g. between measured queries)."""
        self._last = None

    # -- quarantine & scrubbing ----------------------------------------------

    @property
    def quarantined_blocks(self):
        return frozenset(self._quarantined)

    def quarantine(self, file_name: str, block_no: int, data: bytes) -> bool:
        """Pin a known-good copy of a suspect block in the buffer pool.

        While quarantined the frame is exempt from eviction, so every
        read is served from RAM and the suspect device copy is never
        consulted.  Returns False when no pool (or a zero-capacity pool)
        is available to hold the frame — callers then rely on the device
        copy having been repaired in place.
        """
        if self.buffer_pool is None or self.buffer_pool.capacity == 0:
            return False
        payload = bytes(data)
        self.buffer_pool.put(file_name, block_no, payload)
        self.buffer_pool.pin(file_name, block_no)
        self._quarantined.add((file_name, block_no))
        if self.reuse_last_block:
            self._last = (file_name, block_no, payload)
        return True

    def release_quarantine(self, file_name: str, block_no: int) -> None:
        """Unpin a quarantined frame (its device copy verified clean again)."""
        key = (file_name, block_no)
        if key in self._quarantined:
            self._quarantined.discard(key)
            if self.buffer_pool is not None:
                self.buffer_pool.unpin(file_name, block_no)

    def scrub(self, file_names: Optional[Iterable[str]] = None) -> ScrubReport:
        """Walk allocated blocks verifying their checksum envelopes.

        Reads every block of the given files (default: all non-resident
        files) straight from the device — deliberately bypassing the
        caches, since the point is to audit the *medium* — under the
        ``"scrub"`` phase, riding the sequential rate within each file.
        Transient errors are retried like any other read.  Blocks that
        fail verification (or are persistently unreadable) are collected
        in the report; quarantined blocks whose device copy now verifies
        clean are released.
        """
        device = self.device
        names = sorted(file_names) if file_names is not None else sorted(device.files)
        report = ScrubReport()
        start_us = device.stats.elapsed_us
        previous = device.set_phase("scrub")
        try:
            for name in names:
                handle = device.get_file(name)
                if handle.memory_resident:
                    continue
                for block_no in range(handle.num_blocks):
                    report.blocks_scanned += 1
                    try:
                        self._device_read_block(handle, block_no)
                    except (ChecksumError, PersistentIOError):
                        report.bad_blocks.append((name, block_no))
        finally:
            device.set_phase(previous)
        bad = set(report.bad_blocks)
        scanned_files = set(names)
        for key in sorted(self._quarantined):
            if key[0] in scanned_files and key not in bad:
                self.release_quarantine(*key)
                report.released.append(key)
        report.elapsed_us = device.stats.elapsed_us - start_us
        return report
