"""Byte-addressed access path on top of the block device.

Indexes address their data as ``(file, byte offset)``; the pager maps
offsets to blocks and fetches exactly the covering blocks.  This is what
makes the paper's shortcoming **S1** (the learned model living in a
different block than the predicted slot) emerge naturally: a node header
at offset 0 and a slot 6000 bytes later really are two block fetches.

The pager layers three caches in front of the device:

1. *memory-resident files* — Section 6.2's "inner nodes in RAM" case;
   served free, not counted.
2. the *last fetched block* — the paper's default configuration keeps no
   buffer pool but "checks whether the last block fetched can be reused"
   (Section 6.5).
3. an optional LRU :class:`~repro.storage.buffer_pool.BufferPool`
   (Section 6.6).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .buffer_pool import BufferPool
from .device import BlockDevice, BlockFile

__all__ = ["Pager"]


class Pager:
    """Read/write path with last-block reuse and optional buffer pool.

    Args:
        device: the simulated disk.
        buffer_pool: optional LRU cache; None reproduces the paper's
            default no-buffer-management setting.
        reuse_last_block: keep a one-block cache of the most recently
            fetched block (the paper's Section 6.5 behaviour).
    """

    def __init__(
        self,
        device: BlockDevice,
        buffer_pool: Optional[BufferPool] = None,
        reuse_last_block: bool = True,
    ) -> None:
        self.device = device
        self.buffer_pool = buffer_pool
        self.reuse_last_block = reuse_last_block
        self._last: Optional[Tuple[str, int, bytes]] = None
        #: optional :class:`repro.obs.Tracer`, set by ``Tracer.bind``;
        #: only consulted on last-block reuse hits (the one cache level
        #: the device and buffer pool cannot see).
        self.tracer = None

    @property
    def block_size(self) -> int:
        return self.device.block_size

    @property
    def stats(self):
        return self.device.stats

    # -- phase attribution -------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all I/O inside the block to ``name`` (see Figure 6)."""
        previous = self.device.set_phase(name)
        try:
            yield
        finally:
            self.device.set_phase(previous)

    # -- block-level API -----------------------------------------------------

    def read_block(self, file: BlockFile, block_no: int) -> bytes:
        """Read one block through the cache hierarchy."""
        if file.memory_resident:
            return self.device.read_block(file, block_no)
        if self.reuse_last_block and self._last is not None:
            name, no, data = self._last
            if name == file.name and no == block_no:
                if self.tracer is not None:
                    self.tracer.reuse_hit()
                return data
        if self.buffer_pool is not None:
            cached = self.buffer_pool.get(file.name, block_no)
            if cached is not None:
                if self.reuse_last_block:
                    self._last = (file.name, block_no, cached)
                return cached
        data = self.device.read_block(file, block_no)
        if self.buffer_pool is not None:
            self.buffer_pool.put(file.name, block_no, data)
        if self.reuse_last_block:
            self._last = (file.name, block_no, data)
        return data

    def write_block(self, file: BlockFile, block_no: int, data: bytes) -> None:
        """Write one block through to the device, refreshing caches."""
        self.device.write_block(file, block_no, data)
        if file.memory_resident:
            return
        if self.buffer_pool is not None:
            self.buffer_pool.put(file.name, block_no, bytes(data))
        if self.reuse_last_block:
            self._last = (file.name, block_no, bytes(data))

    # -- byte-level API ------------------------------------------------------

    def read_bytes(self, file: BlockFile, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``, fetching covering blocks."""
        if length < 0 or offset < 0:
            raise ValueError(f"invalid byte range offset={offset} length={length}")
        if length == 0:
            return b""
        bs = self.block_size
        first = offset // bs
        last = (offset + length - 1) // bs
        chunks = [self.read_block(file, no) for no in range(first, last + 1)]
        blob = b"".join(chunks)
        start = offset - first * bs
        return blob[start : start + length]

    def write_bytes(self, file: BlockFile, offset: int, data: bytes) -> None:
        """Write bytes at ``offset``; partially covered blocks are read-modified."""
        if offset < 0:
            raise ValueError(f"invalid byte offset {offset}")
        if not data:
            return
        bs = self.block_size
        remaining = memoryview(bytes(data))
        pos = offset
        while remaining:
            block_no = pos // bs
            in_block = pos - block_no * bs
            take = min(bs - in_block, len(remaining))
            if take == bs:
                self.write_block(file, block_no, bytes(remaining[:take]))
            else:
                current = bytearray(self.read_block(file, block_no))
                current[in_block : in_block + take] = remaining[:take]
                self.write_block(file, block_no, bytes(current))
            remaining = remaining[take:]
            pos += take

    # -- cache hygiene ---------------------------------------------------------

    def invalidate_file(self, file_name: str) -> None:
        """Drop cached blocks of a file (call before/after deleting it)."""
        if self._last is not None and self._last[0] == file_name:
            self._last = None
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate_file(file_name)

    def drop_last_block(self) -> None:
        """Forget the one-block reuse cache (e.g. between measured queries)."""
        self._last = None
