"""Disk latency profiles.

The paper evaluates every index on two devices: a 1 TB HDD (Red Hat, Xeon
E5-2690) and an 8 TB SSD array (Ubuntu, EPYC 7662).  We cannot time a real
device from Python, so the substrate charges a simulated latency per block
access instead.  The paper's own analysis (observations O1, O4 and O13)
states that on-disk throughput is determined by the number of fetched
blocks; a latency model that separates positioning cost from transfer cost
therefore preserves every comparative result.

Profiles are deliberately simple:

* ``positioning`` — the cost paid once per *random* access (HDD seek +
  rotational delay; SSD request overhead).
* ``sequential`` — the cost paid when the access continues the previous
  one (next block of the same file).
* ``transfer_per_kib`` — added per KiB moved, so larger block sizes are
  not free (Section 6.4 of the paper varies the block size).

All costs are microseconds of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskProfile", "HDD", "SSD", "NULL_DEVICE"]


@dataclass(frozen=True)
class DiskProfile:
    """Latency model for one storage device.

    Attributes:
        name: human readable device name, used in benchmark reports.
        read_positioning_us: fixed cost of a random block read.
        read_sequential_us: fixed cost of a sequential block read.
        write_positioning_us: fixed cost of a random block write.
        write_sequential_us: fixed cost of a sequential block write.
        transfer_us_per_kib: per-KiB transfer cost added to every access.
    """

    name: str
    read_positioning_us: float
    read_sequential_us: float
    write_positioning_us: float
    write_sequential_us: float
    transfer_us_per_kib: float

    def read_cost_us(self, block_size: int, sequential: bool) -> float:
        """Simulated microseconds to read one block of ``block_size`` bytes."""
        fixed = self.read_sequential_us if sequential else self.read_positioning_us
        return fixed + self.transfer_us_per_kib * (block_size / 1024.0)

    def write_cost_us(self, block_size: int, sequential: bool) -> float:
        """Simulated microseconds to write one block of ``block_size`` bytes."""
        fixed = self.write_sequential_us if sequential else self.write_positioning_us
        return fixed + self.transfer_us_per_kib * (block_size / 1024.0)


#: A 7200 RPM hard disk: positioning (seek + rotation) dominates; a
#: sequential follow-on block is two orders of magnitude cheaper.
HDD = DiskProfile(
    name="hdd",
    read_positioning_us=8000.0,
    read_sequential_us=40.0,
    write_positioning_us=8000.0,
    write_sequential_us=40.0,
    transfer_us_per_kib=10.0,
)

#: A NAND SSD: flat, low access cost; writes slightly more expensive than
#: reads; negligible sequential discount.
SSD = DiskProfile(
    name="ssd",
    read_positioning_us=80.0,
    read_sequential_us=40.0,
    write_positioning_us=120.0,
    write_sequential_us=80.0,
    transfer_us_per_kib=3.0,
)

#: Free storage — useful in unit tests that only care about correctness.
NULL_DEVICE = DiskProfile(
    name="null",
    read_positioning_us=0.0,
    read_sequential_us=0.0,
    write_positioning_us=0.0,
    write_sequential_us=0.0,
    transfer_us_per_kib=0.0,
)
