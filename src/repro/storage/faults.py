"""Seeded, deterministic device-level fault injection.

A :class:`DeviceFaultModel` attached to a ``BlockDevice`` perturbs
*charged* accesses (memory-resident files model trusted RAM and are
never faulted):

- **bit rot** — with ``bit_rot_rate`` per read, one random bit of the
  *stored* payload flips before the read is served.  The damage is on
  the medium, so the block's envelope checksum no longer matches and the
  device raises ``ChecksumError`` instead of serving the bytes.
- **torn multi-block writes** — with ``torn_write_rate`` per multi-block
  ``write_blocks`` call, the write's prefix persists but its final block
  is caught mid-transfer: the block ends half-new/half-old with a stale
  checksum entry.  The tear is *silent* at write time (the drive acked
  from volatile cache); it is detected on the next read of that block.
- **transient read errors** — with ``transient_error_rate`` per read
  attempt, the access fails (``TransientIOError``) but the medium is
  intact; every retry redraws, so bounded retries almost surely succeed.
- **persistent read errors** — with ``persistent_error_rate`` per read,
  the block joins ``bad_blocks`` and every subsequent read raises
  ``PersistentIOError`` until a write remaps it (real drives reallocate
  grown defects on write).
- **stalls** — with ``stall_rate`` per read, the request hangs for
  ``stall_us`` of simulated time before timing out
  (:class:`MemberStallError`, a ``TransientIOError`` carrying the hang).
  The pager's retry loop charges the hang as latency, so a stalling
  member is *slow*, not just flaky — the signal hedged reads act on.
- **whole-member crashes** — ``crash_after=N`` kills the device after
  its Nth faultable read: every later read raises
  :class:`MemberCrashError` (a ``PersistentIOError``), modeling a
  controller/enclosure failure rather than a single grown defect.

All draws come from one seeded ``random.Random``: identical seeds and
access sequences produce identical fault schedules, which the property
tests rely on.  :meth:`DeviceFaultModel.fork` derives per-member child
models — same rates, independent streams — from one parent seed, so a
replica group shares a single chaos seed yet each member fails on its
own schedule.  ``exclude_files`` (default: the WAL) shields files whose
loss the repair protocol cannot undo — a single-copy log is the
recovery *source*, not a repair target; production systems mirror it.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .integrity import PersistentIOError, TransientIOError

__all__ = ["DeviceFaultModel", "MemberCrashError", "MemberStallError"]

_MASK64 = (1 << 64) - 1


def _fork_seed(seed: int, member_id: int) -> int:
    """SplitMix64-style mix of (seed, member_id) into a child seed.

    An integer formula rather than a tuple seed: Python 3.11 removed
    ``random.Random`` support for non-scalar seeds.
    """
    x = (seed * 0x9E3779B97F4A7C15 + member_id + 1) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class MemberCrashError(PersistentIOError):
    """The whole device is gone (controller death), not one bad block."""


class MemberStallError(TransientIOError):
    """A read request hung for ``stall_us`` before timing out."""

    def __init__(self, file_name: str, block_no: int, stall_us: float):
        super().__init__(file_name, block_no,
                         f"request stalled {stall_us:.0f}us before timeout")
        self.stall_us = stall_us


class DeviceFaultModel:
    """Seeded fault schedule for a simulated block device."""

    def __init__(self, seed: int = 0, bit_rot_rate: float = 0.0,
                 torn_write_rate: float = 0.0,
                 transient_error_rate: float = 0.0,
                 persistent_error_rate: float = 0.0,
                 stall_rate: float = 0.0, stall_us: float = 0.0,
                 crash_after: Optional[int] = None,
                 exclude_files: Iterable[str] = ("wal",)):
        for name, rate in (("bit_rot_rate", bit_rot_rate),
                           ("torn_write_rate", torn_write_rate),
                           ("transient_error_rate", transient_error_rate),
                           ("persistent_error_rate", persistent_error_rate),
                           ("stall_rate", stall_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if stall_rate and stall_us <= 0.0:
            raise ValueError("stall_rate needs a positive stall_us")
        if crash_after is not None and crash_after < 0:
            raise ValueError(f"crash_after must be >= 0, got {crash_after}")
        self.seed = seed
        self.rng = random.Random(seed)
        self.bit_rot_rate = bit_rot_rate
        self.torn_write_rate = torn_write_rate
        self.transient_error_rate = transient_error_rate
        self.persistent_error_rate = persistent_error_rate
        self.stall_rate = stall_rate
        self.stall_us = stall_us
        self.crash_after = crash_after
        self.exclude_files: Set[str] = set(exclude_files)
        #: blocks currently unreadable, as (file_name, block_no)
        self.bad_blocks: Set[Tuple[str, int]] = set()
        self.injected_bit_rots = 0
        self.injected_torn_writes = 0
        self.injected_transient_errors = 0
        self.injected_persistent_errors = 0
        self.injected_stalls = 0
        self.reads_observed = 0
        self.crashed = False
        #: torn blocks, recorded for test introspection (the device
        #: reports nothing at write time — the fault is silent)
        self.torn_blocks: List[Tuple[str, int]] = []

    def fork(self, member_id: int, **overrides) -> "DeviceFaultModel":
        """A deterministic per-member child: same rates, independent stream.

        ``member_id`` distinguishes siblings; the child's seed mixes it
        with the parent seed, so one chaos seed yields one independent
        fault schedule per :class:`~repro.sharding.shard.ShardMember`.
        Keyword overrides replace any constructor parameter (e.g. give
        one member ``crash_after`` while its siblings stay clean).
        """
        params = dict(seed=_fork_seed(self.seed, member_id),
                      bit_rot_rate=self.bit_rot_rate,
                      torn_write_rate=self.torn_write_rate,
                      transient_error_rate=self.transient_error_rate,
                      persistent_error_rate=self.persistent_error_rate,
                      stall_rate=self.stall_rate, stall_us=self.stall_us,
                      crash_after=self.crash_after,
                      exclude_files=set(self.exclude_files))
        params.update(overrides)
        return type(self)(**params)

    def clear_crash(self) -> None:
        """Repair the whole-member fault (operator swapped the enclosure)."""
        self.crash_after = None
        self.crashed = False

    def applies_to(self, file_name: str) -> bool:
        return file_name not in self.exclude_files

    def on_read(self, file, block_no: int) -> None:
        """Called by the device after charging a read of ``block_no``.

        May rot the stored payload in place, or raise a transient or
        persistent I/O error.  Checksum verification runs *after* this
        hook, so rot injected here is caught on this very read.
        """
        if not self.applies_to(file.name):
            return
        self.reads_observed += 1
        if self.crashed or (self.crash_after is not None
                            and self.reads_observed > self.crash_after):
            self.crashed = True
            raise MemberCrashError(file.name, block_no, "member crashed")
        key = (file.name, block_no)
        if key in self.bad_blocks:
            raise PersistentIOError(file.name, block_no, "known bad block")
        if self.persistent_error_rate and self.rng.random() < self.persistent_error_rate:
            self.bad_blocks.add(key)
            self.injected_persistent_errors += 1
            raise PersistentIOError(file.name, block_no, "grown defect")
        if self.transient_error_rate and self.rng.random() < self.transient_error_rate:
            self.injected_transient_errors += 1
            raise TransientIOError(file.name, block_no, "transient read failure")
        if self.stall_rate and self.rng.random() < self.stall_rate:
            self.injected_stalls += 1
            raise MemberStallError(file.name, block_no, self.stall_us)
        if self.bit_rot_rate and self.rng.random() < self.bit_rot_rate:
            block = file.blocks[block_no]
            bit = self.rng.randrange(len(block) * 8)
            block[bit // 8] ^= 1 << (bit % 8)
            self.injected_bit_rots += 1

    def torn_index(self, file, pairs: Sequence[Tuple[int, bytes]]) -> Optional[int]:
        """Whether this multi-block write tears, and at which pair index.

        Returns the index of the torn pair (always the last: the prefix
        was already on the medium when power was cut mid-transfer) or
        None for a clean write.
        """
        if len(pairs) < 2 or not self.applies_to(file.name):
            return None
        if self.torn_write_rate and self.rng.random() < self.torn_write_rate:
            self.injected_torn_writes += 1
            torn = len(pairs) - 1
            self.torn_blocks.append((file.name, pairs[torn][0]))
            return torn
        return None

    def on_write(self, file_name: str, block_no: int) -> None:
        """A completed write remaps the block: clear any grown defect."""
        self.bad_blocks.discard((file_name, block_no))
