"""Seeded, deterministic device-level fault injection.

A :class:`DeviceFaultModel` attached to a ``BlockDevice`` perturbs
*charged* accesses (memory-resident files model trusted RAM and are
never faulted):

- **bit rot** — with ``bit_rot_rate`` per read, one random bit of the
  *stored* payload flips before the read is served.  The damage is on
  the medium, so the block's envelope checksum no longer matches and the
  device raises ``ChecksumError`` instead of serving the bytes.
- **torn multi-block writes** — with ``torn_write_rate`` per multi-block
  ``write_blocks`` call, the write's prefix persists but its final block
  is caught mid-transfer: the block ends half-new/half-old with a stale
  checksum entry.  The tear is *silent* at write time (the drive acked
  from volatile cache); it is detected on the next read of that block.
- **transient read errors** — with ``transient_error_rate`` per read
  attempt, the access fails (``TransientIOError``) but the medium is
  intact; every retry redraws, so bounded retries almost surely succeed.
- **persistent read errors** — with ``persistent_error_rate`` per read,
  the block joins ``bad_blocks`` and every subsequent read raises
  ``PersistentIOError`` until a write remaps it (real drives reallocate
  grown defects on write).

All draws come from one seeded ``random.Random``: identical seeds and
access sequences produce identical fault schedules, which the property
tests rely on.  ``exclude_files`` (default: the WAL) shields files whose
loss the repair protocol cannot undo — a single-copy log is the
recovery *source*, not a repair target; production systems mirror it.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .integrity import PersistentIOError, TransientIOError

__all__ = ["DeviceFaultModel"]


class DeviceFaultModel:
    """Seeded fault schedule for a simulated block device."""

    def __init__(self, seed: int = 0, bit_rot_rate: float = 0.0,
                 torn_write_rate: float = 0.0,
                 transient_error_rate: float = 0.0,
                 persistent_error_rate: float = 0.0,
                 exclude_files: Iterable[str] = ("wal",)):
        for name, rate in (("bit_rot_rate", bit_rot_rate),
                           ("torn_write_rate", torn_write_rate),
                           ("transient_error_rate", transient_error_rate),
                           ("persistent_error_rate", persistent_error_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.rng = random.Random(seed)
        self.bit_rot_rate = bit_rot_rate
        self.torn_write_rate = torn_write_rate
        self.transient_error_rate = transient_error_rate
        self.persistent_error_rate = persistent_error_rate
        self.exclude_files: Set[str] = set(exclude_files)
        #: blocks currently unreadable, as (file_name, block_no)
        self.bad_blocks: Set[Tuple[str, int]] = set()
        self.injected_bit_rots = 0
        self.injected_torn_writes = 0
        self.injected_transient_errors = 0
        self.injected_persistent_errors = 0
        #: torn blocks, recorded for test introspection (the device
        #: reports nothing at write time — the fault is silent)
        self.torn_blocks: List[Tuple[str, int]] = []

    def applies_to(self, file_name: str) -> bool:
        return file_name not in self.exclude_files

    def on_read(self, file, block_no: int) -> None:
        """Called by the device after charging a read of ``block_no``.

        May rot the stored payload in place, or raise a transient or
        persistent I/O error.  Checksum verification runs *after* this
        hook, so rot injected here is caught on this very read.
        """
        if not self.applies_to(file.name):
            return
        key = (file.name, block_no)
        if key in self.bad_blocks:
            raise PersistentIOError(file.name, block_no, "known bad block")
        if self.persistent_error_rate and self.rng.random() < self.persistent_error_rate:
            self.bad_blocks.add(key)
            self.injected_persistent_errors += 1
            raise PersistentIOError(file.name, block_no, "grown defect")
        if self.transient_error_rate and self.rng.random() < self.transient_error_rate:
            self.injected_transient_errors += 1
            raise TransientIOError(file.name, block_no, "transient read failure")
        if self.bit_rot_rate and self.rng.random() < self.bit_rot_rate:
            block = file.blocks[block_no]
            bit = self.rng.randrange(len(block) * 8)
            block[bit // 8] ^= 1 << (bit % 8)
            self.injected_bit_rots += 1

    def torn_index(self, file, pairs: Sequence[Tuple[int, bytes]]) -> Optional[int]:
        """Whether this multi-block write tears, and at which pair index.

        Returns the index of the torn pair (always the last: the prefix
        was already on the medium when power was cut mid-transfer) or
        None for a clean write.
        """
        if len(pairs) < 2 or not self.applies_to(file.name):
            return None
        if self.torn_write_rate and self.rng.random() < self.torn_write_rate:
            self.injected_torn_writes += 1
            torn = len(pairs) - 1
            self.torn_blocks.append((file.name, pairs[torn][0]))
            return torn
        return None

    def on_write(self, file_name: str, block_no: int) -> None:
        """A completed write remaps the block: clear any grown defect."""
        self.bad_blocks.discard((file_name, block_no))
