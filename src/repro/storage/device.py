"""Simulated block device.

The device stores *real serialized bytes* in fixed-size blocks grouped
into named files (the paper's ALEX "Layout#2" keeps inner and data nodes
in separate files; dynamic PGM keeps one file per LSM level).  Every read
or write is charged against a :class:`~repro.storage.profile.DiskProfile`
and recorded in :class:`StorageStats`, broken down by the operation phase
(search / insert / smo / maintenance) so that the paper's Figure 6 insert
breakdown can be measured rather than estimated.

Files can be flagged *memory resident* (Section 6.2 of the paper caches
inner nodes in RAM): accesses to such files are served for free and are
not counted as fetched blocks.

Every block additionally carries an out-of-band checksum envelope
(:mod:`repro.storage.integrity`): charged reads verify the stored
payload against it and raise :class:`ChecksumError` instead of ever
serving rotten or torn bytes, and a :class:`DeviceFaultModel`
(:mod:`repro.storage.faults`) can be attached to inject seeded media
faults.  Memory-resident accesses model trusted RAM and are neither
verified nor faulted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .integrity import (ChecksumError, PersistentIOError, TransientIOError,
                        block_crc)
from .profile import DiskProfile, HDD

__all__ = ["BlockDevice", "BlockFile", "StorageStats", "PHASES"]

#: Phases an index can attribute I/O to; ``default`` catches unattributed I/O.
#: ``log`` is the write-ahead-log traffic of :mod:`repro.durability`;
#: ``flush`` is dirty-page write-back traffic (eviction and explicit
#: :meth:`repro.storage.Pager.flush`); ``scrub`` is the checksum-verify
#: walk of :meth:`repro.storage.Pager.scrub` and ``repair`` the
#: block-rebuild writes of :mod:`repro.durability.repair`.
#: ``latch`` is simulated latch-wait time charged by the concurrent
#: serving engine (:mod:`repro.serving`) when sessions conflict on a
#: frame — pure latency, no block transferred, like retry backoff.
PHASES = ("default", "search", "insert", "smo", "maintenance", "scan",
          "bulkload", "log", "flush", "scrub", "repair", "latch")


@dataclass
class StorageStats:
    """Cumulative I/O counters for one device.

    ``reads``/``writes`` count *block* accesses that actually hit the
    simulated disk (memory-resident and cache-served accesses excluded).
    ``elapsed_us`` is the simulated wall clock. ``allocated_blocks`` only
    grows, matching the paper's note that on-disk space is not reclaimed
    (Section 6.3), except when a whole file is deleted (PGM LSM merges).

    ``read_positionings``/``write_positionings`` count the accesses that
    paid the profile's *positioning* (random) cost rather than the
    sequential follow-on cost — the quantity the paper's Table 2 cost
    model separates out.  ``coalesced_runs``/``coalesced_blocks`` count
    multi-block contiguous runs served by :meth:`BlockDevice.read_blocks`
    (one positioning charge amortized over the whole run).

    ``checksum_failures`` counts reads that raised ``ChecksumError``
    instead of serving corrupt bytes; ``io_retries`` counts transient
    read errors absorbed by the pager's retry/backoff loop; and
    ``repaired_blocks`` counts blocks rewritten from checkpoint + WAL by
    the repair path.

    ``latch_waits``/``latch_wait_us`` count conflicting frame accesses
    that the concurrent serving engine stalled on another session's
    latch, and the simulated time those stalls charged (under the
    ``"latch"`` phase) — the contention analogue of the positioning
    counters.
    """

    reads: int = 0
    writes: int = 0
    elapsed_us: float = 0.0
    allocated_blocks: int = 0
    freed_blocks: int = 0
    read_positionings: int = 0
    write_positionings: int = 0
    coalesced_runs: int = 0
    coalesced_blocks: int = 0
    checksum_failures: int = 0
    io_retries: int = 0
    repaired_blocks: int = 0
    latch_waits: int = 0
    latch_wait_us: float = 0.0
    reads_by_phase: Dict[str, int] = field(default_factory=dict)
    writes_by_phase: Dict[str, int] = field(default_factory=dict)
    time_by_phase: Dict[str, float] = field(default_factory=dict)

    @property
    def positionings(self) -> int:
        """Total accesses charged the random-positioning cost."""
        return self.read_positionings + self.write_positionings

    def snapshot(self) -> "StorageStats":
        """Return an independent copy, e.g. to diff around an operation."""
        return StorageStats(
            reads=self.reads,
            writes=self.writes,
            elapsed_us=self.elapsed_us,
            allocated_blocks=self.allocated_blocks,
            freed_blocks=self.freed_blocks,
            read_positionings=self.read_positionings,
            write_positionings=self.write_positionings,
            coalesced_runs=self.coalesced_runs,
            coalesced_blocks=self.coalesced_blocks,
            checksum_failures=self.checksum_failures,
            io_retries=self.io_retries,
            repaired_blocks=self.repaired_blocks,
            latch_waits=self.latch_waits,
            latch_wait_us=self.latch_wait_us,
            reads_by_phase=dict(self.reads_by_phase),
            writes_by_phase=dict(self.writes_by_phase),
            time_by_phase=dict(self.time_by_phase),
        )

    def diff(self, earlier: "StorageStats") -> "StorageStats":
        """Counters accumulated since ``earlier`` was snapshotted.

        The phase dicts cover the union of both sides' phases, so a phase
        that first appears *after* the snapshot (or one that only the
        snapshot saw) still shows up in the delta instead of being
        silently dropped.
        """
        phases = (set(self.reads_by_phase) | set(self.writes_by_phase)
                  | set(self.time_by_phase) | set(earlier.reads_by_phase)
                  | set(earlier.writes_by_phase) | set(earlier.time_by_phase))
        return StorageStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            elapsed_us=self.elapsed_us - earlier.elapsed_us,
            allocated_blocks=self.allocated_blocks - earlier.allocated_blocks,
            freed_blocks=self.freed_blocks - earlier.freed_blocks,
            read_positionings=self.read_positionings - earlier.read_positionings,
            write_positionings=self.write_positionings - earlier.write_positionings,
            coalesced_runs=self.coalesced_runs - earlier.coalesced_runs,
            coalesced_blocks=self.coalesced_blocks - earlier.coalesced_blocks,
            checksum_failures=self.checksum_failures - earlier.checksum_failures,
            io_retries=self.io_retries - earlier.io_retries,
            repaired_blocks=self.repaired_blocks - earlier.repaired_blocks,
            latch_waits=self.latch_waits - earlier.latch_waits,
            latch_wait_us=self.latch_wait_us - earlier.latch_wait_us,
            reads_by_phase={
                p: self.reads_by_phase.get(p, 0) - earlier.reads_by_phase.get(p, 0)
                for p in phases
            },
            writes_by_phase={
                p: self.writes_by_phase.get(p, 0) - earlier.writes_by_phase.get(p, 0)
                for p in phases
            },
            time_by_phase={
                p: self.time_by_phase.get(p, 0.0) - earlier.time_by_phase.get(p, 0.0)
                for p in phases
            },
        )

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes


class BlockFile:
    """Handle for one named file on a :class:`BlockDevice`.

    A file is an append-allocated sequence of blocks.  ``allocate``
    always returns a contiguous extent, matching the paper's constraint
    that "the data in one node must be stored in an adjacent space".
    """

    def __init__(self, device: "BlockDevice", name: str) -> None:
        self.device = device
        self.name = name
        self.blocks: List[Optional[bytearray]] = []
        #: out-of-band checksum envelope, one CRC per block — maintained
        #: by every device write, verified by every charged read.  Bytes
        #: mutated behind the device's back (bit rot, torn writes, tests
        #: poking ``blocks`` directly) leave the entry stale, which is
        #: exactly how the corruption is detected.
        self.checksums: List[int] = []
        self.memory_resident = False
        self.live_blocks = 0
        self.reads = 0
        self.writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockFile({self.name!r}, {len(self.blocks)} blocks)"

    @property
    def num_blocks(self) -> int:
        """Total blocks ever allocated in this file (freed ones included)."""
        return len(self.blocks)

    def allocate(self, count: int) -> int:
        """Allocate ``count`` contiguous blocks at the end; return the first index."""
        if count <= 0:
            raise ValueError(f"allocation count must be positive, got {count}")
        start = len(self.blocks)
        bs = self.device.block_size
        self.blocks.extend(bytearray(bs) for _ in range(count))
        self.checksums.extend(self.device._zero_crc for _ in range(count))
        self.live_blocks += count
        self.device.stats.allocated_blocks += count
        return start

    def free(self, start: int, count: int) -> None:
        """Mark an extent invalid.

        The bytes stay allocated on disk — the paper's Section 6.3 notes
        that reclaiming learned-index space requires bookkeeping the
        authors (and we) do not perform — but the live-block counter
        drops so storage reports can show both figures.
        """
        self._check_range(start, count)
        self.live_blocks -= count
        self.device.stats.freed_blocks += count

    def recompute_checksums(self) -> None:
        """Rebuild the envelope from the stored bytes (device-image load)."""
        self.checksums = [block_crc(bytes(b)) for b in self.blocks]

    def _check_range(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > len(self.blocks):
            raise IndexError(
                f"block range [{start}, {start + count}) out of bounds for "
                f"file {self.name!r} with {len(self.blocks)} blocks"
            )


class BlockDevice:
    """An in-memory simulated disk with per-access latency accounting.

    Args:
        block_size: bytes per block (the paper defaults to 4 KiB and
            sweeps 4/8/16 KiB in Section 6.4).
        profile: latency model; defaults to the HDD profile.
        checksums: verify the per-block checksum envelope on every
            charged read (the default).  The envelope itself is always
            *maintained* by writes, so flipping verification on or off
            never changes block contents or access counts — only whether
            corruption surfaces as ``ChecksumError`` or as silent bytes.
    """

    def __init__(self, block_size: int = 4096, profile: DiskProfile = HDD,
                 checksums: bool = True) -> None:
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self.profile = profile
        self.checksums = checksums
        # The profile and block size are fixed for the device's lifetime,
        # so the four per-access cost figures are constants — computed
        # once here instead of once per charged block.
        self._read_cost_seq = profile.read_cost_us(block_size, True)
        self._read_cost_rand = profile.read_cost_us(block_size, False)
        self._write_cost_seq = profile.write_cost_us(block_size, True)
        self._write_cost_rand = profile.write_cost_us(block_size, False)
        self.stats = StorageStats()
        self.files: Dict[str, BlockFile] = {}
        self._phase = "default"
        # Last-touched (file name, block no), kept as two scalars so the
        # per-read sequentiality test allocates no tuples.
        self._last_file: Optional[str] = None
        self._last_block = -1
        self._zero_crc = block_crc(bytes(block_size))
        #: optional per-access hook ``(kind, file_name, block_no, phase,
        #: cost_us)`` with kind "r"/"w", fired for every *charged* access
        #: (memory-resident files excluded) — set by
        #: :meth:`repro.obs.Tracer.bind`.  None keeps the hot path free.
        self.on_access = None
        #: optional hook ``(file_name, run_length)`` fired once per
        #: multi-block contiguous run completed by :meth:`read_blocks`.
        self.on_run = None
        #: optional :class:`repro.storage.faults.DeviceFaultModel`
        #: injecting seeded media faults into charged accesses.
        self.fault_model = None
        #: optional hook ``(kind, file_name, block_no)`` with kind
        #: "checksum" / "transient" / "persistent", fired when a charged
        #: read surfaces a fault — set by :meth:`repro.obs.Tracer.bind`.
        self.on_fault = None

    # -- file management ---------------------------------------------------

    def create_file(self, name: str) -> BlockFile:
        """Create and return a new empty file; names must be unique."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        handle = BlockFile(self, name)
        self.files[name] = handle
        return handle

    def get_file(self, name: str) -> BlockFile:
        return self.files[name]

    def get_or_create_file(self, name: str) -> BlockFile:
        """Return an existing file or create it — the attach path used
        when an index object is reconstructed over a loaded device image."""
        if name in self.files:
            return self.files[name]
        return self.create_file(name)

    def delete_file(self, name: str) -> None:
        """Delete a file outright, reclaiming its space.

        The paper allows this only for whole files — dynamic PGM deletes a
        merged level's file from disk (Section 6.3).
        """
        handle = self.files.pop(name)
        self.stats.freed_blocks += handle.live_blocks
        handle.blocks = []
        handle.checksums = []
        handle.live_blocks = 0

    # -- phase attribution ---------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    def set_phase(self, phase: str) -> str:
        """Set the I/O attribution phase; returns the previous phase."""
        previous = self._phase
        self._phase = phase
        return previous

    # -- block I/O ---------------------------------------------------------

    def charge_latency(self, cost_us: float) -> None:
        """Charge simulated time that is not a block access (retry backoff)."""
        self.stats.elapsed_us += cost_us
        phase = self._phase
        self.stats.time_by_phase[phase] = self.stats.time_by_phase.get(phase, 0.0) + cost_us

    def charge_latch_wait(self, cost_us: float) -> None:
        """Charge one simulated latch stall (serving-engine contention).

        The wait is pure latency under the ``"latch"`` phase — no block
        moves — exactly like retry backoff, and it counts into the
        ``latch_waits``/``latch_wait_us`` stats the way a random access
        counts into the positioning counters.
        """
        self.stats.latch_waits += 1
        self.stats.latch_wait_us += cost_us
        previous = self._phase
        self._phase = "latch"
        try:
            self.charge_latency(cost_us)
        finally:
            self._phase = previous

    def _maybe_fault_read(self, file: BlockFile, block_no: int) -> None:
        """Give the fault model its shot at a charged read (cost already paid)."""
        if self.fault_model is None:
            return
        try:
            self.fault_model.on_read(file, block_no)
        except TransientIOError:
            if self.on_fault is not None:
                self.on_fault("transient", file.name, block_no)
            raise
        except PersistentIOError:
            if self.on_fault is not None:
                self.on_fault("persistent", file.name, block_no)
            raise

    def _verified_payload(self, file: BlockFile, block_no: int) -> bytes:
        """Fetch a charged block's bytes, refusing to serve corrupt data."""
        data = bytes(file.blocks[block_no])
        if self.checksums and file.checksums[block_no] != block_crc(data):
            self.stats.checksum_failures += 1
            if self.on_fault is not None:
                self.on_fault("checksum", file.name, block_no)
            raise ChecksumError(file.name, block_no, "stored payload does not match envelope")
        return data

    def read_block(self, file: BlockFile, block_no: int) -> bytes:
        """Read one block, charging latency unless the file is memory resident."""
        file._check_range(block_no, 1)
        if file.memory_resident:
            return bytes(file.blocks[block_no])
        stats = self.stats
        if self._last_file == file.name and self._last_block == block_no - 1:
            cost = self._read_cost_seq
        else:
            cost = self._read_cost_rand
            stats.read_positionings += 1
        stats.reads += 1
        file.reads += 1
        stats.elapsed_us += cost
        phase = self._phase
        stats.reads_by_phase[phase] = stats.reads_by_phase.get(phase, 0) + 1
        stats.time_by_phase[phase] = stats.time_by_phase.get(phase, 0.0) + cost
        self._last_file = file.name
        self._last_block = block_no
        if self.on_access is not None:
            self.on_access("r", file.name, block_no, phase, cost)
        if self.fault_model is not None:
            self._maybe_fault_read(file, block_no)
        # _verified_payload, inlined for the single-block hot path.
        data = bytes(file.blocks[block_no])
        if self.checksums and file.checksums[block_no] != block_crc(data):
            stats.checksum_failures += 1
            if self.on_fault is not None:
                self.on_fault("checksum", file.name, block_no)
            raise ChecksumError(file.name, block_no,
                                "stored payload does not match envelope")
        return data

    def read_blocks(self, file: BlockFile, block_nos: List[int]) -> List[bytes]:
        """Read several blocks, coalescing contiguous runs (paper Table 2).

        ``block_nos`` must be sorted ascending with no duplicates — the
        pager's :meth:`~repro.storage.pager.Pager.read_span` guarantees
        this.  Each maximal contiguous run is charged one positioning
        cost for its first block (unless the head of the run extends the
        device's last access, in which case even that block rides the
        sequential rate) plus the sequential/transfer cost for every
        block after it, exactly mirroring the paper's sequential-read
        analysis.  Returns the block payloads in input order.
        """
        if not block_nos:
            return []
        previous = None
        for block_no in block_nos:
            file._check_range(block_no, 1)
            if previous is not None and block_no <= previous:
                raise ValueError(
                    f"read_blocks requires sorted unique block numbers, got "
                    f"{block_no} after {previous}"
                )
            previous = block_no
        out: List[bytes] = []
        if file.memory_resident:
            for block_no in block_nos:
                out.append(bytes(file.blocks[block_no]))
            return out
        phase = self._phase
        run_length = 0
        stats = self.stats
        name = file.name
        blocks = file.blocks
        checksums = file.checksums if self.checksums else None
        fault_model = self.fault_model
        on_access = self.on_access
        read_phase = stats.reads_by_phase.get(phase, 0)
        time_phase = stats.time_by_phase.get(phase, 0.0)
        for block_no in block_nos:
            if self._last_file == name and self._last_block == block_no - 1:
                run_length += 1
                cost = self._read_cost_seq
            else:
                if run_length >= 2 and self.on_run is not None:
                    self.on_run(name, run_length)
                run_length = 1
                cost = self._read_cost_rand
                stats.read_positionings += 1
            stats.reads += 1
            file.reads += 1
            stats.elapsed_us += cost
            read_phase += 1
            time_phase += cost
            self._last_file = name
            self._last_block = block_no
            if on_access is not None:
                on_access("r", name, block_no, phase, cost)
            if run_length == 2:
                # A run became multi-block: count it once, plus its head.
                stats.coalesced_runs += 1
                stats.coalesced_blocks += 1
            if run_length >= 2:
                stats.coalesced_blocks += 1
            if fault_model is not None:
                # Flush deferred phase attribution first: an injected
                # fault propagates out of the loop, and the blocks read
                # so far were already charged.
                stats.reads_by_phase[phase] = read_phase
                stats.time_by_phase[phase] = time_phase
                self._maybe_fault_read(file, block_no)
            # _verified_payload, inlined for the span hot path.
            data = bytes(blocks[block_no])
            if checksums is not None and checksums[block_no] != block_crc(data):
                stats.reads_by_phase[phase] = read_phase
                stats.time_by_phase[phase] = time_phase
                stats.checksum_failures += 1
                if self.on_fault is not None:
                    self.on_fault("checksum", name, block_no)
                raise ChecksumError(name, block_no,
                                    "stored payload does not match envelope")
            out.append(data)
        stats.reads_by_phase[phase] = read_phase
        stats.time_by_phase[phase] = time_phase
        if run_length >= 2 and self.on_run is not None:
            self.on_run(name, run_length)
        return out

    def write_block(self, file: BlockFile, block_no: int, data: bytes) -> None:
        """Write one full block, charging latency unless memory resident."""
        file._check_range(block_no, 1)
        if len(data) != self.block_size:
            raise ValueError(
                f"write of {len(data)} bytes does not match block size {self.block_size}"
            )
        if not file.memory_resident:
            sequential = (self._last_file == file.name
                          and self._last_block == block_no - 1)
            cost = self.profile.write_cost_us(self.block_size, sequential)
            self.stats.writes += 1
            if not sequential:
                self.stats.write_positionings += 1
            file.writes += 1
            self.stats.elapsed_us += cost
            phase = self._phase
            self.stats.writes_by_phase[phase] = self.stats.writes_by_phase.get(phase, 0) + 1
            self.stats.time_by_phase[phase] = self.stats.time_by_phase.get(phase, 0.0) + cost
            self._last_file = file.name
            self._last_block = block_no
            if self.on_access is not None:
                self.on_access("w", file.name, block_no, phase, cost)
        file.blocks[block_no] = bytearray(data)
        file.checksums[block_no] = block_crc(bytes(data))
        if self.fault_model is not None:
            self.fault_model.on_write(file.name, block_no)

    def write_blocks(self, file: BlockFile, writes: List[tuple]) -> None:
        """Write several blocks, coalescing contiguous runs — the write-side
        twin of :meth:`read_blocks` (paper Table 2's t_s/t_t split applied
        to writes).

        ``writes`` is a list of ``(block_no, data)`` pairs sorted ascending
        by block number with no duplicates; every payload must be a full
        block.  Each maximal contiguous run is charged one positioning cost
        for its head (unless the head extends the device's last access, in
        which case even that block rides the sequential rate) plus the
        sequential/transfer cost for every block after it, extending
        ``write_positionings``/``coalesced_runs``/``coalesced_blocks`` and
        the ``on_run`` hook symmetrically with the read path.
        """
        if not writes:
            return
        previous = None
        for block_no, data in writes:
            file._check_range(block_no, 1)
            if len(data) != self.block_size:
                raise ValueError(
                    f"write of {len(data)} bytes does not match block size "
                    f"{self.block_size}")
            if previous is not None and block_no <= previous:
                raise ValueError(
                    f"write_blocks requires sorted unique block numbers, got "
                    f"{block_no} after {previous}")
            previous = block_no
        if file.memory_resident:
            for block_no, data in writes:
                file.blocks[block_no] = bytearray(data)
                file.checksums[block_no] = block_crc(bytes(data))
            return
        torn_at = None
        if self.fault_model is not None:
            torn_at = self.fault_model.torn_index(file, writes)
        phase = self._phase
        run_length = 0
        for index, (block_no, data) in enumerate(writes):
            sequential = (self._last_file == file.name
                          and self._last_block == block_no - 1)
            if sequential:
                run_length += 1
            else:
                if run_length >= 2 and self.on_run is not None:
                    self.on_run(file.name, run_length)
                run_length = 1
            cost = self.profile.write_cost_us(self.block_size, sequential)
            self.stats.writes += 1
            if not sequential:
                self.stats.write_positionings += 1
            file.writes += 1
            self.stats.elapsed_us += cost
            self.stats.writes_by_phase[phase] = self.stats.writes_by_phase.get(phase, 0) + 1
            self.stats.time_by_phase[phase] = self.stats.time_by_phase.get(phase, 0.0) + cost
            self._last_file = file.name
            self._last_block = block_no
            if self.on_access is not None:
                self.on_access("w", file.name, block_no, phase, cost)
            if run_length == 2:
                # A run became multi-block: count it once, plus its head.
                self.stats.coalesced_runs += 1
                self.stats.coalesced_blocks += 1
            if run_length >= 2:
                self.stats.coalesced_blocks += 1
            if index == torn_at:
                # Torn write: the drive acked from volatile cache but the
                # final block only made it halfway to the medium.  The
                # envelope entry keeps the *old* payload's CRC, so the
                # next read of this block raises ChecksumError — the
                # fault is silent until then.
                half = self.block_size // 2
                old = file.blocks[block_no]
                file.blocks[block_no] = bytearray(data[:half]) + old[half:]
            else:
                file.blocks[block_no] = bytearray(data)
                file.checksums[block_no] = block_crc(bytes(data))
                if self.fault_model is not None:
                    self.fault_model.on_write(file.name, block_no)
        if run_length >= 2 and self.on_run is not None:
            self.on_run(file.name, run_length)

    # -- reporting -----------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        """Total bytes ever allocated across live files (freed extents included)."""
        return sum(f.num_blocks for f in self.files.values()) * self.block_size

    @property
    def live_bytes(self) -> int:
        """Bytes in extents that have not been freed."""
        return sum(f.live_blocks for f in self.files.values()) * self.block_size
