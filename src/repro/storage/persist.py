"""Persistence: save/load a block device image to a real file.

The simulator holds real serialized bytes, so a device can be dumped to
an image file and reloaded later — a bulk-loaded index survives process
restarts the way an on-disk index should.  The image format is:

``magic | version | block_size | profile name | file table | blocks``

with the file table listing, per file: name, number of blocks, live
blocks, memory-resident flag.  Counters (reads/writes/clock) are *not*
persisted: a reloaded device starts with fresh statistics, as a real
machine would after a reboot.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Union

from .device import BlockDevice
from .profile import HDD, NULL_DEVICE, SSD, DiskProfile

__all__ = ["save_device", "load_device"]

_MAGIC = b"RPRODEV1"
_HEADER = struct.Struct("<II")  # block_size, file count
_FILE_HEADER = struct.Struct("<HIIB")  # name length, num blocks, live blocks, resident

_PROFILES = {"hdd": HDD, "ssd": SSD, "null": NULL_DEVICE}


def save_device(device: BlockDevice, target: Union[str, BinaryIO],
                pager=None) -> None:
    """Write the device image to ``target`` (path or binary stream).

    Pass the ``pager`` serving the device when one exists: a write-back
    pager may hold dirty pages newer than the device's blocks, and the
    image must contain them — they are flushed first, in coalesced
    :meth:`~repro.storage.device.BlockDevice.write_blocks` runs (charged
    simulated I/O, as a real checkpoint writer would pay).
    """
    if pager is not None:
        pager.flush()
    own = isinstance(target, str)
    stream: BinaryIO = open(target, "wb") if own else target
    try:
        stream.write(_MAGIC)
        name = device.profile.name.encode("utf-8")
        stream.write(_HEADER.pack(device.block_size, len(device.files)))
        stream.write(struct.pack("<H", len(name)))
        stream.write(name)
        for file_name, handle in device.files.items():
            encoded = file_name.encode("utf-8")
            stream.write(_FILE_HEADER.pack(len(encoded), handle.num_blocks,
                                           handle.live_blocks,
                                           int(handle.memory_resident)))
            stream.write(encoded)
            for block in handle.blocks:
                stream.write(bytes(block))
    finally:
        if own:
            stream.close()


def load_device(source: Union[str, BinaryIO],
                profile: DiskProfile = None) -> BlockDevice:
    """Reconstruct a device from an image written by :func:`save_device`.

    ``profile`` overrides the persisted latency model (e.g. replay an
    HDD-built image on the SSD profile).
    """
    own = isinstance(source, str)
    stream: BinaryIO = open(source, "rb") if own else source
    try:
        magic = stream.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"not a device image (bad magic {magic!r})")
        block_size, file_count = _HEADER.unpack(stream.read(_HEADER.size))
        name_len = struct.unpack("<H", stream.read(2))[0]
        profile_name = stream.read(name_len).decode("utf-8")
        if profile is None:
            try:
                profile = _PROFILES[profile_name]
            except KeyError:
                raise ValueError(
                    f"image uses custom profile {profile_name!r}; pass one "
                    f"explicitly to load_device") from None
        device = BlockDevice(block_size=block_size, profile=profile)
        for _ in range(file_count):
            raw = stream.read(_FILE_HEADER.size)
            fname_len, num_blocks, live_blocks, resident = _FILE_HEADER.unpack(raw)
            file_name = stream.read(fname_len).decode("utf-8")
            handle = device.create_file(file_name)
            handle.blocks = [
                bytearray(stream.read(block_size)) for _ in range(num_blocks)
            ]
            handle.live_blocks = live_blocks
            handle.memory_resident = bool(resident)
            # The image stores payloads only; the out-of-band checksum
            # envelope is rebuilt from them (a clean image verifies).
            handle.recompute_checksums()
        # Loading is not an I/O event: reset the allocation counter the
        # create_file/blocks assignment path did not touch anyway.
        device.stats.allocated_blocks = sum(
            f.num_blocks for f in device.files.values())
        return device
    finally:
        if own:
            stream.close()
