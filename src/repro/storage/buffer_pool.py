"""Block buffer pools.

Section 6.6 of the paper studies how many blocks each index fetches from
disk when an LRU cache of 0..512 blocks sits in front of it.  LRU is the
paper's (and our default) policy; CLOCK and FIFO are provided for
replacement-policy ablations.

Pools are write-through by default: a write updates the cached copy and
still goes to disk, so eviction never needs to write back.  Under the
pager's *write-back* mode every policy additionally tracks a per-frame
dirty bit: :meth:`BufferPool.mark_dirty` pins the frame's contents as
newer than the device copy, and eviction of a dirty frame hands the frame
to the ``on_evict`` callback (the pager's single-frame flush) before the
frame is dropped.  Clean evictions never call back — they cost nothing.

Frames can additionally be *pinned* (:meth:`BufferPool.pin`): eviction
skips pinned frames under every policy, overflowing the capacity bound
if everything else is pinned.  The pager's quarantine uses this to keep
a known-good copy of a suspect block resident while the device copy
awaits repair.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = ["BufferPool", "ClockBufferPool", "FifoBufferPool", "make_buffer_pool"]

_Key = Tuple[str, int]


class BufferPool:
    """A write-through LRU cache of disk blocks.

    Args:
        capacity: maximum number of cached blocks; 0 disables caching
            (every probe misses), which matches the paper's default
            "no buffer management" configuration.
    """

    policy = "lru"

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._blocks: "OrderedDict[_Key, bytes]" = OrderedDict()
        self._dirty: set = set()
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0
        self.clean_evictions = 0
        #: optional observer with ``pool_hit()``/``pool_miss()`` methods
        #: (a :class:`repro.obs.Tracer`); None keeps probes hook-free.
        self.listener = None
        #: optional callback ``(file_name, block_no, data)`` invoked when a
        #: *dirty* frame is evicted, after the frame has left the pool —
        #: the pager uses it to flush exactly that frame to the device.
        self.on_evict = None
        #: optional callback ``(file_name, block_no)`` invoked whenever a
        #: frame leaves the pool for *any* reason (clean or dirty
        #: eviction, invalidation, clear).  The pager uses it to drop the
        #: frame's cached numpy key array (DESIGN.md §15) — that cache is
        #: identity-validated, so this hook is memory hygiene, not a
        #: correctness requirement.
        self.on_drop = None

    def __len__(self) -> int:
        return len(self._blocks)

    # All three policies funnel their probe outcomes through these two
    # helpers, so the hit/miss counters and the tracer hook can never
    # disagree across policies.
    def _record_hit(self) -> None:
        self.hits += 1
        if self.listener is not None:
            self.listener.pool_hit()

    def _record_miss(self) -> None:
        self.misses += 1
        if self.listener is not None:
            self.listener.pool_miss()

    # All three policies funnel evictions through this helper, so dirty
    # write-back and the eviction counters can never disagree either.
    # Called *after* the frame has been removed from ``_blocks`` (the
    # callback may re-enter the pool, e.g. a WAL flush forced by the
    # pager's log-before-data barrier).
    def _evicted(self, key: _Key, data: bytes) -> None:
        if key in self._dirty:
            self._dirty.discard(key)
            self.dirty_evictions += 1
            if self.on_evict is not None:
                self.on_evict(key[0], key[1], data)
        else:
            self.clean_evictions += 1
        if self.on_drop is not None:
            self.on_drop(key[0], key[1])

    # -- dirty tracking ------------------------------------------------------

    def mark_dirty(self, file_name: str, block_no: int) -> None:
        """Flag a cached frame as newer than the device copy.

        The frame must currently be in the pool — the write-back pager
        always ``put``s the payload first.
        """
        key = (file_name, block_no)
        if key not in self._blocks:
            raise KeyError(f"cannot mark absent frame {key!r} dirty")
        self._dirty.add(key)

    def is_dirty(self, file_name: str, block_no: int) -> bool:
        return (file_name, block_no) in self._dirty

    def peek_dirty(self, file_name: str, block_no: int) -> Optional[bytes]:
        """The frame's payload iff it is cached *and dirty*, else None.

        Does not touch recency, hit counters or the listener: the caller
        is consulting the authoritative copy of a not-yet-flushed block
        (a memory-resident read under a write-back pager), not probing
        the cache.
        """
        key = (file_name, block_no)
        if key in self._dirty:
            return self._blocks[key]
        return None

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def dirty_items(self, file_name: Optional[str] = None) -> Dict[_Key, bytes]:
        """Dirty frames (optionally of one file) as ``{(file, no): data}``.

        Does not touch recency or hit counters — flushing is not an
        access under any replacement policy.
        """
        return {
            key: self._blocks[key] for key in self._dirty
            if file_name is None or key[0] == file_name
        }

    def mark_clean(self, keys) -> None:
        """Clear dirty bits after the caller flushed ``keys`` to disk.

        The frames stay cached — a freshly flushed page is still the
        newest copy and keeps serving reads.
        """
        for key in keys:
            self._dirty.discard(key)

    # -- pinning -------------------------------------------------------------

    def pin(self, file_name: str, block_no: int) -> None:
        """Exempt a cached frame from eviction (quarantine support)."""
        key = (file_name, block_no)
        if key not in self._blocks:
            raise KeyError(f"cannot pin absent frame {key!r}")
        self._pinned.add(key)

    def unpin(self, file_name: str, block_no: int) -> None:
        self._pinned.discard((file_name, block_no))

    def is_pinned(self, file_name: str, block_no: int) -> bool:
        return (file_name, block_no) in self._pinned

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)

    def _evict_overflow(self) -> None:
        """Evict in policy order until within capacity, skipping pinned
        frames (the pool may stay over capacity if everything is pinned)."""
        while len(self._blocks) > self.capacity:
            victim = next((k for k in self._blocks if k not in self._pinned), None)
            if victim is None:
                break
            victim_data = self._blocks.pop(victim)
            self._evicted(victim, victim_data)

    def get(self, file_name: str, block_no: int) -> Optional[bytes]:
        """Return the cached block or None, updating recency and hit counters."""
        key = (file_name, block_no)
        data = self._blocks.get(key)
        if data is None:
            self._record_miss()
            return None
        self._blocks.move_to_end(key)
        self._record_hit()
        return data

    def put(self, file_name: str, block_no: int, data: bytes) -> None:
        """Insert or refresh a block, evicting the least recently used one."""
        if self.capacity == 0:
            return
        key = (file_name, block_no)
        self._blocks[key] = data
        self._blocks.move_to_end(key)
        self._evict_overflow()

    # -- bulk API -----------------------------------------------------------
    # ``read_span`` probes and back-fills whole runs at once; these do the
    # hit bookkeeping per block (the counters must stay exact) but apply
    # the policy bookkeeping in one pass per call instead of per probe.

    def _touch(self, key: _Key) -> None:
        """Policy bookkeeping for a bulk hit (LRU: refresh recency)."""
        self._blocks.move_to_end(key)

    def get_many(self, file_name: str, block_nos) -> Dict[int, bytes]:
        """Probe several blocks at once; returns ``{block_no: data}`` hits."""
        hits: Dict[int, bytes] = {}
        for block_no in block_nos:
            data = self._blocks.get((file_name, block_no))
            if data is None:
                self._record_miss()
            else:
                hits[block_no] = data
                self._record_hit()
        for block_no in hits:
            self._touch((file_name, block_no))
        return hits

    def put_many(self, file_name: str, blocks: Dict[int, bytes]) -> None:
        """Insert or refresh several blocks, then run one eviction pass."""
        if self.capacity == 0 or not blocks:
            return
        for block_no, data in blocks.items():
            key = (file_name, block_no)
            self._blocks[key] = data
            self._blocks.move_to_end(key)
        self._evict_overflow()

    def invalidate(self, file_name: str, block_no: int) -> None:
        """Drop one block if present (e.g. the extent holding it was freed).

        Dirty contents are *discarded*, not flushed — invalidation means
        the caller no longer wants the bytes on disk either.
        """
        key = (file_name, block_no)
        present = self._blocks.pop(key, None) is not None
        self._dirty.discard(key)
        self._pinned.discard(key)
        if present and self.on_drop is not None:
            self.on_drop(key[0], key[1])

    def invalidate_file(self, file_name: str) -> None:
        """Drop every cached block of a file (e.g. a deleted PGM level)."""
        stale = [key for key in self._blocks if key[0] == file_name]
        for key in stale:
            del self._blocks[key]
            self._dirty.discard(key)
            self._pinned.discard(key)
            if self.on_drop is not None:
                self.on_drop(key[0], key[1])

    def clear(self) -> None:
        dropped = list(self._blocks) if self.on_drop is not None else ()
        self._blocks.clear()
        self._dirty.clear()
        self._pinned.clear()
        for key in dropped:
            self.on_drop(key[0], key[1])

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FifoBufferPool(BufferPool):
    """First-in-first-out replacement: recency of access is ignored."""

    policy = "fifo"

    def get(self, file_name: str, block_no: int) -> Optional[bytes]:
        data = self._blocks.get((file_name, block_no))
        if data is None:
            self._record_miss()
            return None
        self._record_hit()  # no move_to_end: insertion order decides eviction
        return data

    def put(self, file_name: str, block_no: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        key = (file_name, block_no)
        if key in self._blocks:
            self._blocks[key] = data  # refresh contents, keep queue position
            return
        self._blocks[key] = data
        self._evict_overflow()

    def _touch(self, key: _Key) -> None:
        """FIFO ignores recency — a bulk hit needs no bookkeeping."""

    def put_many(self, file_name: str, blocks: Dict[int, bytes]) -> None:
        if self.capacity == 0 or not blocks:
            return
        for block_no, data in blocks.items():
            # assignment keeps an existing key's queue position (FIFO refresh)
            self._blocks[(file_name, block_no)] = data
        self._evict_overflow()


class ClockBufferPool(BufferPool):
    """Second-chance (CLOCK) replacement: an approximation of LRU that
    real buffer managers use to avoid per-access reordering."""

    policy = "clock"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._referenced: Dict[_Key, bool] = {}
        self._ring: List[_Key] = []
        self._hand = 0

    def get(self, file_name: str, block_no: int) -> Optional[bytes]:
        key = (file_name, block_no)
        data = self._blocks.get(key)
        if data is None:
            self._record_miss()
            return None
        self._referenced[key] = True
        self._record_hit()
        return data

    def put(self, file_name: str, block_no: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        key = (file_name, block_no)
        if key in self._blocks:
            self._blocks[key] = data
            self._referenced[key] = True
            return
        while len(self._blocks) >= self.capacity:
            if all(k in self._pinned for k in self._ring):
                break  # every frame quarantined: overflow rather than evict
            victim = self._ring[self._hand]
            if victim in self._pinned:
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            if self._referenced.get(victim, False):
                self._referenced[victim] = False
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            victim_data = self._blocks.pop(victim)
            del self._referenced[victim]
            self._ring[self._hand] = key
            self._blocks[key] = data
            self._referenced[key] = False
            self._hand = (self._hand + 1) % len(self._ring)
            self._evicted(victim, victim_data)
            return
        self._ring.append(key)
        self._blocks[key] = data
        self._referenced[key] = False

    def _touch(self, key: _Key) -> None:
        """CLOCK marks the frame referenced; the hand does the rest."""
        self._referenced[key] = True

    def put_many(self, file_name: str, blocks: Dict[int, bytes]) -> None:
        # CLOCK eviction advances the hand one frame at a time, so bulk
        # insertion is inherently per-frame; the bulk entry point still
        # saves the per-block call overhead on the read_span path.
        for block_no, data in blocks.items():
            self.put(file_name, block_no, data)

    def invalidate(self, file_name: str, block_no: int) -> None:
        key = (file_name, block_no)
        if key in self._blocks:
            del self._blocks[key]
            self._dirty.discard(key)
            self._pinned.discard(key)
            self._referenced.pop(key, None)
            if self.on_drop is not None:
                self.on_drop(key[0], key[1])
            if key in self._ring:
                index = self._ring.index(key)
                self._ring.pop(index)
                if self._hand > index:
                    self._hand -= 1
                if self._ring:
                    self._hand %= len(self._ring)
                else:
                    self._hand = 0

    def invalidate_file(self, file_name: str) -> None:
        for key in [k for k in list(self._blocks) if k[0] == file_name]:
            self.invalidate(*key)

    def clear(self) -> None:
        super().clear()
        self._referenced.clear()
        self._ring.clear()
        self._hand = 0


_POLICIES = {"lru": BufferPool, "fifo": FifoBufferPool, "clock": ClockBufferPool}


def make_buffer_pool(capacity: int, policy: str = "lru") -> BufferPool:
    """Construct a buffer pool by policy name (``lru``/``fifo``/``clock``)."""
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown buffer policy {policy!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(capacity)
