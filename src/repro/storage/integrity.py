"""Block-integrity primitives: checksum envelope and storage-fault types.

Every block written through :class:`~repro.storage.device.BlockDevice`
carries a CRC over its full payload, kept in an out-of-band per-file
array (``BlockFile.checksums``) that models the common production layout
of an *inline* per-block CRC32C (e.g. InnoDB page checksums, ext4
metadata_csum, ZFS blkptr checksums).  Keeping the envelope out of band
means verification adds **zero extra block accesses** on the clean read
path — exactly like an inline trailer, without stealing payload bytes
from the simulated 4 KiB blocks and perturbing every fan-out constant in
the study.  We use zlib's CRC-32 (the only CRC in the stdlib); CRC32C
differs just in polynomial choice and detection strength is equivalent
for single-block faults.

Faults surface as exceptions, never as corrupt bytes:

``ChecksumError``
    the stored payload no longer matches its checksum (bit rot, torn
    write) — deterministic, retrying cannot help; repair can.
``TransientIOError``
    the access failed but the medium is fine (bus reset, timeout) — the
    pager absorbs these with bounded retry/backoff.
``PersistentIOError``
    the block is unreadable for good (grown defect) until a remapping
    write replaces it — the repair path's job.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = [
    "StorageFault",
    "ChecksumError",
    "TransientIOError",
    "PersistentIOError",
    "block_crc",
    "ScrubReport",
]


def block_crc(data: bytes) -> int:
    """The 32-bit checksum stored in a block's envelope entry.

    ``zlib.crc32`` is the fastest 32-bit digest available in the
    standard toolchain (measurably faster than ``adler32`` and numpy
    folds for 4 KiB pages), and every charged read verifies its block,
    so this sits on the wall-clock hot path.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class StorageFault(Exception):
    """Base of every storage-level fault raised instead of corrupt data.

    Carries the failing ``(file_name, block_no)`` so handlers (pager
    retry, quarantine, repair) can target the exact block.
    """

    def __init__(self, file_name: str, block_no: int, detail: str = ""):
        self.file_name = file_name
        self.block_no = block_no
        suffix = f": {detail}" if detail else ""
        super().__init__(f"{type(self).__name__} at {file_name!r} block {block_no}{suffix}")


class ChecksumError(StorageFault):
    """A read found payload bytes inconsistent with the block's checksum."""


class TransientIOError(StorageFault):
    """A read attempt failed; the stored data is intact — retry."""


class PersistentIOError(StorageFault):
    """The block is unreadable until a write remaps it — repair."""


@dataclass
class ScrubReport:
    """Result of one :meth:`Pager.scrub` pass over allocated blocks."""

    blocks_scanned: int = 0
    #: blocks whose device copy failed verification, as (file, block_no)
    bad_blocks: List[Tuple[str, int]] = field(default_factory=list)
    #: quarantined blocks whose device copy now verifies clean again
    released: List[Tuple[str, int]] = field(default_factory=list)
    #: simulated time charged to the scrub (under the ``"scrub"`` phase)
    elapsed_us: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.bad_blocks
