"""Simulated block-storage substrate.

The paper runs every index against a raw disk (no OS page cache, 4 KiB
blocks).  This package provides the equivalent substrate: a
:class:`BlockDevice` holding real serialized bytes with per-access latency
accounting, a byte-addressed :class:`Pager`, an LRU :class:`BufferPool`,
and HDD/SSD :class:`DiskProfile` latency models.
"""

from .buffer_pool import BufferPool, ClockBufferPool, FifoBufferPool, make_buffer_pool
from .device import BlockDevice, BlockFile, StorageStats, PHASES
from .faults import DeviceFaultModel, MemberCrashError, MemberStallError
from .integrity import (ChecksumError, PersistentIOError, ScrubReport,
                        StorageFault, TransientIOError, block_crc)
from .pager import Pager
from .persist import load_device, save_device
from .profile import HDD, NULL_DEVICE, SSD, DiskProfile

__all__ = [
    "BlockDevice",
    "BlockFile",
    "BufferPool",
    "ChecksumError",
    "ClockBufferPool",
    "DeviceFaultModel",
    "FifoBufferPool",
    "make_buffer_pool",
    "block_crc",
    "DiskProfile",
    "HDD",
    "MemberCrashError",
    "MemberStallError",
    "NULL_DEVICE",
    "Pager",
    "PersistentIOError",
    "load_device",
    "save_device",
    "PHASES",
    "ScrubReport",
    "SSD",
    "StorageFault",
    "StorageStats",
    "TransientIOError",
]
