#!/usr/bin/env python
"""Measure line coverage of src/repro with the stdlib only.

CI gates on ``pytest --cov=repro --cov-fail-under=N`` (see
.github/workflows/ci.yml); this script exists so the ratchet value N can
be (re)measured in environments without pytest-cov installed.  It runs
the test suite under a ``sys.settrace`` line collector restricted to
``src/repro`` and divides executed lines by compiled executable lines
(every line that appears in some code object's ``co_lines``).

The denominator is slightly *stricter* than coverage.py's — it counts
``pragma: no cover`` lines too — so the percentage printed here is a
lower bound on what pytest-cov reports, which is the safe direction for
picking a ratchet threshold.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]
"""

import os
import sys


def executable_lines(path):
    """All line numbers the compiler can emit for a source file."""
    with open(path, "r") as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(line for _, _, line in code.co_lines() if line is not None)
        stack.extend(c for c in code.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    prefix = os.path.join(repo, "src", "repro") + os.sep
    executed = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if event == "call":
            return tracer if filename.startswith(prefix) else None
        if event == "line":
            executed.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    import threading

    import pytest

    # Import everything up front so module-level lines are credited
    # (tracing only starts afterwards; imports count as covered the same
    # way coverage.py credits them when the module first loads).
    sources = []
    for root, _, files in os.walk(prefix):
        for name in sorted(files):
            if name.endswith(".py"):
                sources.append(os.path.join(root, name))

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider"] + argv)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"pytest exited {rc}; coverage numbers below are unreliable")

    total_exec = total_hit = 0
    rows = []
    for path in sources:
        possible = executable_lines(path)
        # Module-level lines ran at import time, before settrace could
        # see them; treat an imported module's top-level code as covered.
        hit = executed.get(path, set()) & possible
        if path in executed:
            top = set(line for _, _, line in
                      compile(open(path).read(), path, "exec").co_lines()
                      if line is not None)
            hit = hit | (top & possible)
        total_exec += len(possible)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(possible) if possible else 100.0
        rows.append((pct, path))
    rows.sort()
    for pct, path in rows:
        print(f"{pct:6.1f}%  {os.path.relpath(path, repo)}")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL {total_hit}/{total_exec} lines = {overall:.2f}%")
    return 0 if rc == 0 else int(rc)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
