#!/usr/bin/env python
"""Sharded tier: range partitioning, replicas, divergent per-shard tuning.

A `ShardedIndex` (DESIGN.md Section 14) owns N independent shards —
each its own device, pager and WAL — behind one `DiskIndex` facade.
Three things to watch:

* **Routing** — `lookup_many` batches split by shard boundary and merge
  back in order; boundary-straddling scans tile across shards.
* **Replication** — writes ship synchronously to every replica while
  reads fan out round-robin, spreading charged I/O across copies.
* **Workload-aware tuning** — each shard counts its op mix; the P1-P5
  scorer picks a *different* index class per shard when the traffic
  diverges, and a hot-range migration moves keys through the WAL.

Run:  python examples/sharded_tier.py
"""

from __future__ import annotations

from repro.core import make_sharded_index
from repro.datasets import make_dataset
from repro.sharding import Rebalancer, ShardTuner
from repro.workloads import run_workload

KEYS = 45_000
OPS = 3_000


def main() -> None:
    keys = sorted(set(int(k) for k in make_dataset("ycsb", 2 * KEYS)))
    loaded = keys[0::2]
    fresh = keys[1::2]

    tier = make_sharded_index("btree", 3, sample_keys=loaded,
                              replicas=2, durability=True)
    tier.bulk_load([(k, k + 1) for k in loaded])
    partition = tier.partition
    print(f"=== 3 shards x 2 replicas over {len(loaded)} keys, HDD ===")
    for shard in tier.shards:
        lo, hi = partition.range_of(shard.shard_id)
        print(f"  shard {shard.shard_id}: [{lo}, {hi}) "
              f"{shard.index_name} x{shard.replication_factor}")

    # Skewed traffic: shard 0 reads only, shard 1 read-heavy, shard 2
    # write-heavy — the mix the tuner scores per shard.
    b0, b1 = partition.boundaries
    ops = []
    reads = iter([k for k in loaded if k < b0])
    mids = iter([k for k in loaded if b0 <= k < b1])
    mid_writes = iter([k for k in fresh if b0 <= k < b1])
    writes = iter([k for k in fresh if k >= b1])
    for i in range(OPS // 3):
        ops.append(("lookup", next(reads)))
        ops.append(("insert", next(mid_writes)) if i % 20 == 0
                   else ("lookup", next(mids)))
        ops.append(("insert", next(writes)))
    result = run_workload(tier, ops, workload="skewed", shards=3, replicas=2)
    print(f"\nRouted {result.num_ops} ops; per-shard view:")
    for shard_id, view in result.per_shard.items():
        mix = {k: v for k, v in view["ops"].items() if v}
        print(f"  shard {shard_id}: {mix}, reads served per member "
              f"{view['reads_served']}, shipped {view['shipped_records']}")

    plan = ShardTuner().retune(tier)
    print(f"\nTuner plan (P1-P5 scoring): {plan}")
    print(f"Composition after retune: {tier.composition()}")

    report = Rebalancer(tier).migrate(2, 1, 500)
    print(f"\nMigrated {report.keys_moved} hot keys from shard "
          f"{report.source} to {report.destination} through the WAL "
          f"({report.logged_records} logged records); new boundary "
          f"{report.new_boundary}")
    live = tier.verify()
    print(f"Tier verifies clean: {live} live entries, every shard "
          f"in-range, replicas bit-identical")


if __name__ == "__main__":
    main()
