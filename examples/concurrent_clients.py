#!/usr/bin/env python
"""Concurrent clients: one shared index, N sessions, one group commit.

The serving engine (DESIGN.md Section 13) interleaves N client op
streams over a single disk-resident index under the simulated clock.
Three effects to watch as the client count grows:

* **Cross-client group commit** — every session's pending inserts ride
  the same WAL flush, so log flushes per committed write collapse.
* **Latch contention** — zipfian hot keys make sessions collide on the
  same frames; exclusive (write) latch stalls show up as simulated
  wait time in each client's perceived latency.
* **Snapshot reads** — lookups resolve against the durable prefix and
  never take latches: read-side latch wait is identically zero.

Run:  python examples/concurrent_clients.py
"""

from __future__ import annotations

from repro import HDD, BlockDevice, Pager, make_index
from repro.serving import split_ops
from repro.storage.buffer_pool import make_buffer_pool
from repro.datasets import make_dataset
from repro.durability import WriteAheadLog
from repro.workloads import WORKLOADS, build_workload, run_workload

BULK_KEYS = 20_000
NUM_OPS = 4_000


def main() -> None:
    spec = WORKLOADS["balanced"]
    num_inserts = sum(1 for i in range(NUM_OPS)
                      if spec.round_pattern[i % len(spec.round_pattern)] == "I")
    keys = make_dataset("ycsb", BULK_KEYS + num_inserts)
    bulk_items, ops = build_workload(spec, keys, NUM_OPS,
                                     lookup_distribution="zipfian", zipf_s=0.9)

    print(f"=== Balanced workload, zipfian(0.9) lookups, HDD "
          f"({BULK_KEYS} keys bulk loaded, {NUM_OPS} ops) ===")
    print(f"{'clients':>7} {'ops/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
          f"{'flushes/write':>13} {'group':>6} {'latch ms':>9} "
          f"{'read latch':>10}")
    print("-" * 76)
    for clients in (1, 4, 16, 64):
        device = BlockDevice(block_size=4096, profile=HDD)
        pager = Pager(device, make_buffer_pool(256, "lru"))
        index = make_index("btree", pager)
        index.bulk_load(bulk_items)
        index.attach_wal(WriteAheadLog(pager, group_commit=1))
        # client_ops forces the serving path even at one client, so the
        # single-client row reports the same commit/latch columns.
        result = run_workload(index, ops, workload="balanced",
                              client_ops=split_ops(ops, clients))
        print(f"{clients:>7} {result.throughput_ops_per_s:>8.0f} "
              f"{result.p50_latency_us / 1e3:>8.2f} "
              f"{result.p99_latency_us / 1e3:>8.2f} "
              f"{result.flushes_per_committed_write:>13.3f} "
              f"{result.mean_commit_group:>6.1f} "
              f"{result.latch_wait_us / 1e3:>9.1f} "
              f"{result.read_latch_wait_us:>10.1f}")
        worst = max((c for c in result.per_client.values() if c["ops"]),
                    key=lambda c: c["latency"]["p99"])
        print(f"{'':>7}   worst client: p99 "
              f"{worst['latency']['p99'] / 1e3:.2f} ms over "
              f"{worst['ops']} ops, max dispatch gap "
              f"{worst['max_dispatch_gap']}")

    print("\nOne WAL flush absorbs every session's pending writes, so "
          "flushes per committed write fall roughly as 1/clients while "
          "p99 absorbs the latch stalls the hot keys cause — and the "
          "read-latch column stays zero because snapshot reads never "
          "touch the latch table.")


if __name__ == "__main__":
    main()
