#!/usr/bin/env python
"""OLTP-style mixed workload: which index should back a write-hot table?

The motivating scenario of the paper's introduction: an OLTP table whose
index does not fit in RAM.  We replay the paper's Balanced workload
(50% inserts / 50% lookups, interleaved 10-and-10 per round) over a
skewed, FB-like key distribution on both an HDD and an SSD, and report
throughput, tail latency and write amplification per index.

Run:  python examples/oltp_workload.py
"""

from __future__ import annotations

from repro import HDD, SSD, BlockDevice, Pager, index_names, make_index
from repro.datasets import make_dataset
from repro.workloads import WORKLOADS, build_workload, run_workload

BULK_KEYS = 20_000
NUM_OPS = 10_000


def main() -> None:
    spec = WORKLOADS["balanced"]
    num_inserts = sum(1 for i in range(NUM_OPS)
                      if spec.round_pattern[i % len(spec.round_pattern)] == "I")
    keys = make_dataset("fb", BULK_KEYS + num_inserts)
    bulk_items, ops = build_workload(spec, keys, NUM_OPS)

    for profile in (HDD, SSD):
        print(f"\n=== Balanced workload on {profile.name.upper()} "
              f"({BULK_KEYS} keys bulk loaded, {NUM_OPS} ops) ===")
        print(f"{'index':8} {'ops/s':>10} {'p99 ms':>8} {'writes/op':>10} "
              f"{'storage MiB':>12}")
        print("-" * 54)
        for name in index_names():
            device = BlockDevice(block_size=4096, profile=profile)
            index = make_index(name, Pager(device))
            index.bulk_load(bulk_items)
            result = run_workload(index, ops, workload="balanced")
            print(f"{name:8} {result.throughput_ops_per_s:>10.0f} "
                  f"{result.p99_latency_us / 1000:>8.2f} "
                  f"{result.blocks_written_per_op:>10.2f} "
                  f"{device.allocated_bytes / 2**20:>12.2f}")

    print("\nThe paper's O9 in action: on disk, write amplification decides "
          "the mixed-workload ranking, and the B+-tree's cheap in-block "
          "inserts keep it first or second.")


if __name__ == "__main__":
    main()
