#!/usr/bin/env python
"""Serve a replicated tier through member crashes without losing a write.

The walkthrough builds a durable 2-shard tier, three copies per shard,
with read hedging armed.  One chaos seed then drives three failure
modes (DESIGN.md Section 17):

1. **Degrading replica** — one replica per shard runs on rotting media
   (seeded per-member fault forks: transient errors, bit rot, stalls)
   while the engine serves a mixed stream under per-op deadlines, a
   storage-fault retry budget and the write admission gate.
2. **Replica crash** — a whole member dies mid-rotation; reads hedge
   around it, the member is quarantined, and after the "operator swap"
   it rejoins by catch-up resync: the missed WAL suffix is replayed
   (charged) and the result byte-verified against the primary.
3. **Primary crash** — the primary dies; the freshest healthy replica
   is promoted live, the log is rebuilt on its device with sequence
   numbering unbroken, and serving continues.

After each act the tier is audited: every durable insert record must be
readable with its exact payload — zero lost acknowledged writes.

Run:  python examples/chaos_serving.py
"""

from __future__ import annotations

import random

from repro import HDD, DeviceFaultModel
from repro.core import make_sharded_index
from repro.workloads import run_workload

CHAOS_SEED = 77


def audit(tier) -> int:
    """Every durable insert record must serve its exact payload."""
    checked = 0
    for shard in tier.shards:
        for record in shard.wal.durable_records():
            if record.op != "insert":
                continue
            checked += 1
            got = tier.lookup(record.key)
            assert got == record.payload, \
                f"LOST ACKED WRITE: key {record.key} -> {got}"
    return checked


def mixed_ops(keys, n, insert_base, seed=31):
    rng = random.Random(seed)
    ops, nxt = [], insert_base
    for _ in range(n):
        if rng.random() < 0.4:
            ops.append(("insert", nxt))
            nxt += 2
        else:
            ops.append(("lookup", keys[rng.randrange(len(keys))]))
    return ops


def main() -> None:
    rng = random.Random(7)
    keys = sorted(rng.sample(range(10**9), 6_000))
    tier = make_sharded_index("btree", 2, sample_keys=keys, replicas=3,
                              durability=True, group_commit=8, profile=HDD,
                              hedge_us=3 * HDD.read_positioning_us)
    tier.bulk_load([(k, k + 1) for k in keys])
    print(f"tier: {tier.num_shards} shards x {tier.replication_factor} "
          f"copies, durable, hedging armed")

    # Act 1: one replica per shard degrades while the engine serves.
    parent = DeviceFaultModel(seed=CHAOS_SEED, transient_error_rate=2e-3,
                              bit_rot_rate=1e-3, stall_rate=1e-3,
                              stall_us=5 * HDD.read_positioning_us)
    for shard in tier.shards:
        shard.replicas[0].device.fault_model = parent.fork(shard.shard_id + 1)
    res = run_workload(tier, mixed_ops(keys, 2_000, 10**9 + 1),
                       clients=4, validate=True,
                       deadline_us=500_000.0, retry_budget=3,
                       max_inflight_writes=64)
    print(f"act 1 — degrading media: {res.io_retries} retries, "
          f"{res.checksum_failures} checksum refusals, "
          f"{res.hedged_reads} hedged reads, {res.shed_ops} shed, "
          f"{res.deadline_misses} deadline misses, p99 "
          f"{res.p99_latency_us / 1e3:.1f} ms; "
          f"audited {audit(tier)} acked writes — none lost")

    # Act 2: a whole replica dies; reads hedge around it, then the
    # repaired member rejoins by catch-up resync.  The victim is the
    # *clean* replica: act 1's media faults struck replicas[0] through
    # the write path, which taints a member (possible half-applied
    # mutation) and forces the full re-seed — only an untainted member
    # qualifies for the cheap log-suffix resync.
    victim_shard = tier.shards[0]
    victim = victim_shard.replicas[1]
    victim.device.fault_model = parent.fork(100, crash_after=20,
                                            transient_error_rate=0.0,
                                            bit_rot_rate=0.0, stall_rate=0.0)
    run_workload(tier, mixed_ops(keys, 1_000, 10**9 + 10**6 + 1, seed=32),
                 clients=4, validate=True, deadline_us=500_000.0,
                 retry_budget=3, max_inflight_writes=64)
    states = tier.health_summary()[0]
    print(f"act 2 — replica crash: health {states}, "
          f"{tier.hedged_reads} hedged reads so far")
    victim.device.fault_model.clear_crash()
    rejoined = tier.rejoin_quarantined()
    print(f"         operator swap + rejoin: {rejoined} "
          f"({tier.resync_blocks} log blocks scanned); "
          f"audited {audit(tier)} acked writes — none lost")

    # Act 3: the primary itself dies; live failover promotes a replica.
    old_primary = tier.shards[1].primary
    old_primary.device.fault_model = parent.fork(200, crash_after=10)
    res = run_workload(tier, mixed_ops(keys, 1_000, 10**9 + 2 * 10**6 + 1,
                                       seed=33),
                       clients=4, validate=True, deadline_us=500_000.0,
                       retry_budget=3, max_inflight_writes=64)
    assert res.failovers >= 1
    assert tier.shards[1].primary is not old_primary
    print(f"act 3 — primary crash: {res.failovers} live failover(s), "
          f"log re-homed (seqno continues at "
          f"{tier.shards[1].wal.next_seqno}); "
          f"audited {audit(tier)} acked writes — none lost")

    tier.wal.flush()
    live = tier.verify()
    print(f"final verify: {live} live keys, replica groups consistent")


if __name__ == "__main__":
    main()
