#!/usr/bin/env python
"""Demonstrate the paper's design principles P1-P5 with live measurements.

Section 7.2 of the paper distills the evaluation into five design
choices for future on-disk learned indexes.  This example measures each
one with the library:

* **P1 (reduce tree height)** — lookup blocks vs tree height across
  the five indexes.
* **P2 (lightweight SMOs)** — the SMO + maintenance share of insert
  latency, per index.
* **P3 (cheap next-item fetch)** — scan cost of gapped layouts (ALEX,
  LIPP) vs dense layouts (B+-tree, FITing, PGM).
* **P4 (storage layout)** — model-in-parent (FITing/PGM) vs
  model-in-node (ALEX/LIPP): leaf blocks touched per lookup.
* **P5 (co-design with the buffer)** — the hybrid design: learned inner
  part over B+-tree-style leaves, with and without a memory-resident
  inner part.

Run:  python examples/design_principles.py
"""

from __future__ import annotations

from repro import HDD, BlockDevice, Pager, index_names, make_index
from repro.datasets import make_dataset
from repro.workloads import WORKLOADS, build_workload, run_workload

N_KEYS = 60_000
N_OPS = 1_500


def build(name, items, **params):
    device = BlockDevice(4096, HDD)
    index = make_index(name, Pager(device), **params)
    index.bulk_load(items)
    return index


def main() -> None:
    keys = make_dataset("fb", N_KEYS)
    bulk, lookups = build_workload(WORKLOADS["lookup_only"], keys, N_OPS)
    _, scans = build_workload(WORKLOADS["scan_only"], keys, N_OPS // 4)

    print("P1 - tree height vs lookup blocks (FB dataset)")
    print(f"  {'index':8} {'height':>6} {'blocks/lookup':>14}")
    for name in index_names():
        index = build(name, bulk)
        res = run_workload(index, lookups)
        print(f"  {name:8} {index.height():>6} {res.blocks_read_per_op:>14.2f}")

    print("\nP2 - SMO + maintenance share of insert time")
    wkeys = make_dataset("fb", 20_000)
    wbulk, inserts = build_workload(WORKLOADS["write_only"], wkeys, 8_000)
    print(f"  {'index':8} {'total us':>9} {'smo us':>8} {'maint us':>9} {'share':>7}")
    for name in index_names():
        index = build(name, wbulk)
        res = run_workload(index, inserts)
        smo = res.phase_latency_us("smo")
        maint = res.phase_latency_us("maintenance")
        share = (smo + maint) / max(res.mean_latency_us, 1e-9)
        print(f"  {name:8} {res.mean_latency_us:>9.0f} {smo:>8.0f} "
              f"{maint:>9.0f} {share:>6.0%}")

    print("\nP3 - scan cost: dense layouts vs gapped layouts")
    print(f"  {'index':8} {'blocks/scan(100)':>17}")
    for name in index_names():
        index = build(name, bulk)
        res = run_workload(index, scans, scan_length=100)
        print(f"  {name:8} {res.blocks_read_per_op:>17.2f}")

    print("\nP4 - model placement: leaf blocks per lookup")
    print("  model in parent (FITing, PGM) vs model in node (ALEX, LIPP)")
    for name in ("fiting", "pgm", "alex", "lipp"):
        index = build(name, bulk)
        res = run_workload(index, lookups)
        leaf = res.leaf_blocks_per_op if name != "lipp" else res.blocks_read_per_op
        print(f"  {name:8} {leaf:>14.2f}")

    print("\nP5 - the hybrid design (learned inner + B+-tree leaves)")
    print("  plid = this repo's instantiation of all five principles")
    print(f"  {'variant':22} {'blocks/lookup':>14} {'blocks/scan':>12}")
    for name in ("btree", "hybrid-pgm", "hybrid-lipp", "plid"):
        for resident in (False, True):
            index = build(name, bulk)
            if resident:
                try:
                    index.set_inner_memory_resident(True)
                except NotImplementedError:
                    continue
            res_l = run_workload(index, lookups)
            res_s = run_workload(index, scans, scan_length=100)
            label = f"{name}{' +RAM inner' if resident else ''}"
            print(f"  {label:22} {res_l.blocks_read_per_op:>14.2f} "
                  f"{res_s.blocks_read_per_op:>12.2f}")


if __name__ == "__main__":
    main()
