#!/usr/bin/env python
"""Crash mid-workload, recover from checkpoint + WAL, verify the result.

The walkthrough builds a B+-tree on the HDD profile, attaches a
write-ahead log with group commit of 8, checkpoints, and starts a
write-only stream that a fault injector kills at operation 7000 —
tearing the final log block, as a real power loss mid-flush would.
Recovery replays the log's CRC-valid prefix over the checkpoint image
and the result is compared, key for key, against an oracle that ran the
same prefix without crashing.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

import random

from repro import BlockDevice, HDD, Pager, make_index
from repro.durability import FaultInjector, WriteAheadLog, recover, take_checkpoint
from repro.workloads import run_workload

GROUP_COMMIT = 8
CRASH_AT = 7_000


def main() -> None:
    rng = random.Random(31)
    keys = sorted(rng.sample(range(10**12), 30_000))
    bulk = [(k, k + 1) for k in keys[:20_000]]
    ops = [("insert", k) for k in keys[20_000:]]

    index = make_index("btree", Pager(BlockDevice(4096, HDD)))
    index.bulk_load(bulk)
    wal = WriteAheadLog(index.pager, group_commit=GROUP_COMMIT)
    index.attach_wal(wal)
    checkpoint = take_checkpoint(index, wal)
    print(f"bulk loaded {len(bulk)} keys, checkpoint = {checkpoint.size_bytes / 2**20:.1f} MiB "
          f"(LSN {checkpoint.lsn})")

    injector = FaultInjector(crash_at_op=CRASH_AT, torn_tail=True)
    result = run_workload(index, ops, workload="write_only", fault_injector=injector)
    print(f"CRASH at op {result.crashed_at_op}: {result.log_records} records logged, "
          f"{result.log_flushes} group commits, {wal.pending} buffered records lost, "
          f"tail log block torn")

    recovered = recover(checkpoint, wal)
    print(f"recovered {recovered.records_applied} ops from the WAL "
          f"(scan {recovered.wal_scan_us / 1e3:.1f} ms + replay "
          f"{recovered.replay_us / 1e3:.1f} ms simulated)")

    oracle = make_index("btree", Pager(BlockDevice(4096, HDD)))
    oracle.bulk_load(bulk)
    for _kind, key in ops[:recovered.last_seqno]:
        oracle.insert(key, key + 1)
    assert recovered.index.scan(0, 10**6) == oracle.scan(0, 10**6)
    live = recovered.index.verify()
    print(f"verified: full scan identical to the never-crashed oracle ({live} live keys)")


if __name__ == "__main__":
    main()
