#!/usr/bin/env python
"""Persist a built index to a file and reopen it later.

A bulk load is the expensive part of a disk-resident index's life; this
example builds an ALEX index once, saves the device image plus the
index's meta block to ``/tmp/alex.idx``, reopens it (on the SSD cost
model), verifies its structural invariants, and keeps writing to it.

Run:  python examples/persist_and_reopen.py
"""

from __future__ import annotations

import os
import random
import time

from repro import HDD, SSD, BlockDevice, Pager, make_index
from repro.core import load_index, save_index

PATH = "/tmp/alex.idx"


def main() -> None:
    rng = random.Random(7)
    keys = sorted(rng.sample(range(10**12), 80_000))

    t0 = time.time()
    index = make_index("alex", Pager(BlockDevice(4096, HDD)))
    index.bulk_load([(k, k + 1) for k in keys])
    index.delete(keys[5])
    index.update(keys[6], 123)
    print(f"built ALEX over {len(keys)} keys in {time.time() - t0:.1f}s wall")

    save_index(index, PATH)
    size_mib = os.path.getsize(PATH) / 2**20
    print(f"saved to {PATH} ({size_mib:.1f} MiB)")

    t0 = time.time()
    reopened = load_index(PATH, profile=SSD)  # replay on the SSD cost model
    print(f"reopened in {time.time() - t0:.1f}s wall "
          f"(no rebuild: the bulk load is not repeated)")

    assert reopened.lookup(keys[5]) is None          # delete survived
    assert reopened.lookup(keys[6]) == 123           # update survived
    assert reopened.lookup(keys[1000]) == keys[1000] + 1
    live = reopened.verify()
    print(f"verify(): structure intact, {live} live entries")

    # The reopened index keeps working, SMOs included.
    added = 0
    while added < 5_000:
        key = rng.randrange(10**12)
        if reopened.lookup(key) is not None:
            continue
        reopened.insert(key, key + 1)
        added += 1
    print(f"inserted {added} more keys after reopen; "
          f"verify() -> {reopened.verify()} entries")
    stats = reopened.pager.stats
    print(f"simulated SSD time since reopen: {stats.elapsed_us / 1e6:.2f}s "
          f"({stats.reads} reads, {stats.writes} writes)")
    os.unlink(PATH)


if __name__ == "__main__":
    main()
