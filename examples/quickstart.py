#!/usr/bin/env python
"""Quickstart: build each disk-resident index and compare one lookup.

Creates a simulated 4 KiB-block HDD, bulk loads one million-scale key
set into each of the five studied indexes, and shows what a single
lookup costs in fetched blocks and simulated latency — the quantity the
whole paper is about.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import HDD, BlockDevice, Pager, index_names, make_index


def main() -> None:
    rng = random.Random(42)
    keys = sorted(rng.sample(range(10**12), 100_000))
    items = [(key, key + 1) for key in keys]
    probe = keys[len(keys) // 2]

    print(f"{'index':8} {'height':>6} {'size MiB':>9} {'blocks/lookup':>13} "
          f"{'sim latency':>12}")
    print("-" * 55)
    for name in index_names(include_plid=True):
        device = BlockDevice(block_size=4096, profile=HDD)
        pager = Pager(device)
        index = make_index(name, pager)
        index.bulk_load(items)

        pager.drop_last_block()  # measure a cold lookup
        before = device.stats.snapshot()
        payload = index.lookup(probe)
        delta = device.stats.diff(before)
        assert payload == probe + 1

        print(f"{name:8} {index.height():>6} "
              f"{device.allocated_bytes / 2**20:>9.1f} "
              f"{delta.reads:>13} {delta.elapsed_us / 1000:>10.2f}ms")

    print("\nEvery number above comes from real serialized bytes moving "
          "through a block device simulator -- try swapping HDD for SSD.")


if __name__ == "__main__":
    main()
