#!/usr/bin/env python
"""Capacity planning: pick an index for a given dataset + workload mix.

A downstream-user scenario: you know roughly what your data looks like
and your read/write mix; which disk-resident index should you deploy,
and with what block size?  This example profiles the dataset the way
Table 3 of the paper does, runs a miniature bake-off, and prints a
recommendation with the evidence.

Run:  python examples/capacity_planning.py [dataset] [workload]
e.g.  python examples/capacity_planning.py osm read_heavy
"""

from __future__ import annotations

import sys

from repro import HDD, BlockDevice, Pager, index_names, make_index
from repro.datasets import dataset_names, make_dataset, profile_dataset
from repro.workloads import WORKLOADS, build_workload, run_workload

N_KEYS = 30_000
N_OPS = 6_000


def bake_off(dataset: str, workload: str) -> None:
    profile = profile_dataset(dataset, make_dataset(dataset, N_KEYS),
                              error_bounds=(64,))
    print(f"dataset {dataset!r}: {profile.segments_by_error[64]} PLA segments "
          f"@ eps=64, conflict degree {profile.conflict_degree} "
          f"({profile.btree_leaves} B+-tree leaves)")
    hard_for_pla = profile.segments_by_error[64] > 100
    hard_for_lipp = profile.conflict_degree > 64
    print(f"  -> {'hard' if hard_for_pla else 'easy'} to model linearly; "
          f"{'hostile' if hard_for_lipp else 'friendly'} to exact-position "
          f"indexes\n")

    spec = WORKLOADS[workload]
    num_inserts = sum(1 for i in range(N_OPS)
                      if spec.round_pattern[i % len(spec.round_pattern)] == "I")
    keys = make_dataset(dataset, (N_KEYS + num_inserts) if not spec.bulk_all
                        else N_KEYS)
    bulk, ops = build_workload(spec, keys, N_OPS if not spec.bulk_all else 1_500)

    print(f"workload {workload!r}: {len(bulk)} keys bulk loaded, {len(ops)} ops")
    print(f"{'index':8} {'ops/s':>9} {'p99 ms':>8} {'reads/op':>9} "
          f"{'writes/op':>10} {'MiB':>8}")
    print("-" * 58)
    scores = {}
    for name in index_names(include_plid=True):
        device = BlockDevice(4096, HDD)
        index = make_index(name, Pager(device))
        index.bulk_load(bulk)
        result = run_workload(index, ops, workload=workload)
        scores[name] = result.throughput_ops_per_s
        print(f"{name:8} {result.throughput_ops_per_s:>9.0f} "
              f"{result.p99_latency_us / 1000:>8.2f} "
              f"{result.blocks_read_per_op:>9.2f} "
              f"{result.blocks_written_per_op:>10.2f} "
              f"{device.allocated_bytes / 2**20:>8.2f}")

    winner = max(scores, key=scores.get)
    runner_up = sorted(scores, key=scores.get)[-2]
    margin = scores[winner] / scores[runner_up]
    print(f"\nrecommendation: {winner} "
          f"({margin:.2f}x over {runner_up} on this mix)")
    if winner != "btree" and margin < 1.15:
        print("  margin is thin -- the B+-tree's stable tail latency "
              "(paper O18) usually breaks this tie in production.")


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "osm"
    workload = sys.argv[2] if len(sys.argv) > 2 else "read_heavy"
    if dataset not in dataset_names(include_large=True):
        raise SystemExit(f"unknown dataset {dataset!r}; pick from "
                         f"{dataset_names(include_large=True)}")
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; pick from "
                         f"{list(WORKLOADS)}")
    bake_off(dataset, workload)


if __name__ == "__main__":
    main()
