#!/usr/bin/env python
"""Corrupt a live index block, scrub it out, repair it byte-identical.

The walkthrough builds a B+-tree on the HDD profile, attaches a
write-ahead log, checkpoints, and runs part of a write stream so the
committed state lives in checkpoint + WAL, not just on disk.  A byte of
one leaf block is then flipped behind the device's back — media
corruption: the stored bytes change, the checksum envelope does not.
The next lookup of that block raises ``ChecksumError`` instead of
serving garbage, a scrub pass pins down exactly which block rotted, and
``repair_blocks`` rebuilds it from the checkpoint plus the WAL's redo
records — byte-identical to the pre-corruption contents, with zero
acknowledged writes lost.  A ``SelfHealer`` then absorbs a second
corruption mid-stream without the workload ever seeing it.

Run:  python examples/self_healing.py
"""

from __future__ import annotations

import random

from repro import BlockDevice, ChecksumError, HDD, Pager, make_index
from repro.durability import SelfHealer, WriteAheadLog, repair_blocks, take_checkpoint
from repro.workloads import run_workload

GROUP_COMMIT = 8


def corrupt(device: BlockDevice, file_name: str, block_no: int) -> None:
    """Flip one stored byte without touching the checksum envelope."""
    handle = device.get_file(file_name)
    block = bytearray(handle.blocks[block_no])
    block[200] ^= 0x5A
    handle.blocks[block_no] = block


def main() -> None:
    rng = random.Random(31)
    keys = rng.sample(range(10**12), 30_000)  # unsorted: inserts span all leaves
    bulk = sorted((k, k + 1) for k in keys[:20_000])
    ops = [("insert", k) for k in keys[20_000:]]

    device = BlockDevice(4096, HDD)
    index = make_index("btree", Pager(device))
    index.bulk_load(bulk)
    wal = WriteAheadLog(index.pager, group_commit=GROUP_COMMIT)
    index.attach_wal(wal)
    checkpoint = take_checkpoint(index, wal)
    run_workload(index, ops[:5_000], workload="write_only")
    print(f"bulk loaded {len(bulk)} keys, checkpointed, 5000 inserts logged "
          f"(LSN {checkpoint.lsn} + {wal.records_appended} WAL records)")

    # Media corruption: a leaf block rots under a live, healthy index.
    victim = ("btree.leaf", 7)
    before = bytes(device.get_file(victim[0]).blocks[victim[1]])
    corrupt(device, *victim)
    index.pager.drop_last_block()
    try:
        index.scan(0, 10**6)
        raise SystemExit("corrupt block was served!")
    except ChecksumError as fault:
        print(f"detected: {fault}")

    report = index.pager.scrub()
    print(f"scrub: {report.blocks_scanned} blocks audited, "
          f"bad = {report.bad_blocks}")
    assert report.bad_blocks == [victim]

    repair = repair_blocks(index, checkpoint, report.bad_blocks, wal)
    after = bytes(device.get_file(victim[0]).blocks[victim[1]])
    assert after == before, "repair must be byte-identical"
    print(f"repaired {repair.blocks_repaired} block from checkpoint + "
          f"{repair.records_replayed} WAL records in "
          f"{repair.repair_us / 1e3:.1f} ms simulated — byte-identical")

    # Hands-free: a SelfHealer absorbs corruption mid-workload.
    corrupt(device, *victim)
    index.pager.drop_last_block()
    healer = SelfHealer(index, checkpoint, wal)
    result = run_workload(index, ops[5_000:], workload="write_only",
                          healer=healer)
    live = index.verify()
    print(f"workload finished over a rotting device: "
          f"{result.healed_faults} fault healed in-stream, "
          f"{result.checksum_failures} detection, scrub clean = "
          f"{not index.pager.scrub().bad_blocks}, verified {live} keys")


if __name__ == "__main__":
    main()
